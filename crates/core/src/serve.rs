//! The resident serving fleet: a shared job queue feeding one or more
//! long-lived [`EvalEngine`]s — one per accelerator card.
//!
//! The paper's accelerator pays off when it sits *resident* — a fixed
//! device fed a stream of 786,432-bit products — not when it is driven as
//! a one-shot function. This module is the host-side shape of that
//! deployment, at two scales:
//!
//! * [`ProductServer`] — one resident engine behind a bounded queue (the
//!   single-card deployment);
//! * [`ServerPool`] — a **fleet** of resident engines, each modeling one
//!   accelerator card, pulling micro-batches from one shared bounded
//!   queue (the multi-card deployment the paper's cloud scenario implies:
//!   many clients, several PCIe cards, one dispatch queue).
//!
//! Both speak the same submission surface ([`Submitter`]) — as does
//! [`ClientSession`], the per-client handle layered on top:
//!
//! * [`Submitter::submit`] blocks while the queue is full (natural
//!   backpressure for cooperating producers);
//! * [`Submitter::try_submit`] returns [`SubmitError::Full`] immediately,
//!   handing the request back for load shedding (sheds are counted in
//!   [`ServeStats::shed`]);
//! * pending jobs are **micro-batched**: a card claims a flush when
//!   [`ServeConfig::max_batch`] jobs are waiting or the oldest has waited
//!   [`ServeConfig::max_delay`], whichever comes first, and the whole
//!   flush goes through [`EvalEngine::run`] as one batch;
//! * flush claims are **deadline-aware** ([`FlushPolicy`]): under
//!   [`FlushPolicy::Edf`] (the default) a card picks the jobs with the
//!   earliest deadlines first, and an urgent deadline pulls the flush
//!   earlier than the batch window — under overload this expires strictly
//!   fewer jobs than FIFO order (`bench_fleet` measures exactly that);
//! * each job's result comes back through its [`ProductTicket`] —
//!   blocking [`ProductTicket::wait`], polling [`ProductTicket::try_wait`],
//!   bounded [`ProductTicket::wait_timeout`], or not at all
//!   ([`ProductTicket::cancel`] drops a queued job at claim time,
//!   counted in [`ServeStats::cancelled`]) — and a job whose deadline
//!   passes before execution is answered with [`ServeError::Expired`]
//!   instead of being run — [`ServeStats::expired_in_queue`] counts jobs
//!   that were already hopeless when a card dequeued them (queueing
//!   pressure), while [`ServeStats::expired_in_flush`] counts jobs
//!   overtaken during their own flush's preparation phase (compute
//!   pressure);
//! * a **reactor-style client** needs none of the ticket-per-thread
//!   machinery: [`CompletionQueue`] multiplexes the completions of many
//!   in-flight submissions onto one receiver with caller-supplied tags,
//!   so a single thread overlaps submission with completion
//!   ([`CompletionQueue::submit_tagged`] / [`CompletionQueue::recv`]);
//! * recurring operands can be **registered once** on a
//!   [`ClientSession`] ([`ClientSession::register`]): registered operands
//!   are pinned in every card's cache by id — no per-submit digest
//!   hashing, no digest-LRU pressure — and a stream submitted against them
//!   ([`ClientSession::submit_with`]) rides the cached-transform rungs
//!   from its first flush ([`ServeStats::pinned_hits`]);
//! * on a heterogeneous fleet, [`RoutePolicy::BySize`] steers every job
//!   to a card whose transform geometry fits its operands, so a small
//!   card never claims (and fails) a job only its bigger sibling can
//!   run;
//! * the fleet is **self-healing**: every flush runs under panic
//!   containment, its jobs are re-queued to surviving cards (up to
//!   [`ServeConfig::retry_limit`], within their deadline budget —
//!   [`ServeStats::retried`]), transient [`MultiplyError::Device`]
//!   faults are retried the same way, and a job that keeps killing
//!   flushes is quarantined with [`ServeError::Poisoned`] instead of
//!   taking the fleet down with it. On a supervised pool
//!   ([`ServerPool::with_backend_factory`]) a panicked card is *rebuilt*
//!   — exponential backoff, at most [`ServeConfig::restart_cap`]
//!   attempts, session pins replayed — and per-card [`CardHealth`] shows
//!   up in [`PoolStats::health`]; [`ServerPool::drain`] stops intake and
//!   finishes queued work before joining. The deterministic
//!   [`crate::fault::FaultyMultiplier`] harness drives all of it in
//!   tests and `bench_chaos`.
//!
//! On top of the queue each card keeps a **prepared-handle cache** (LRU,
//! keyed by the operand's digest): every operand of a flushed job is
//! pushed through [`Multiplier::prepare`] once and the handle retained, so
//! a recurring operand — a running accumulator, a fixed key element, a
//! SIMD mask — automatically lands on the one-cached/both-cached rungs of
//! the batch ladder without the caller managing handles at all. A flush's
//! cache **misses** are prepared in parallel at the product level
//! ([`EvalEngine::prepare_many`]): each missing forward transform already
//! fans out across cores internally, but independent misses no longer wait
//! on each other. Caches are per card — handles are provenance-stamped by
//! the backend instance that prepared them, so cards never share spectra
//! unless their transform geometry matches (see
//! [`crate::engine::HandleProvenance`]).
//!
//! A pool can additionally run a **speculative preparer**
//! ([`ServerPool::spawn_speculative`]): a background task that watches the
//! digest LRU's hit statistics and prepares the *stream-side* operand of
//! queued jobs — the fresh partner of a hot recurring operand — off the
//! critical path, so the next flush finds both spectra resident and the
//! product lands on the both-cached rung.
//!
//! [`ServedMultiplier`] closes the loop with the DGHV layer: it implements
//! [`he_dghv::CiphertextMultiplier`] over any [`Submitter`], so circuit
//! evaluation (`CircuitEvaluator::and_tree`, comparator sweeps) schedules
//! whole levels as one micro-batch through the resident fleet.
//!
//! # Example: one resident card
//!
//! ```
//! use he_accel::prelude::*;
//!
//! let engine = EvalEngine::new(SsaSoftware::for_operand_bits(256)?);
//! let server = ProductServer::spawn(engine, ServeConfig::default());
//! let a = UBig::from(123_456_789u64);
//! let tickets: Vec<ProductTicket> = (1..=4u64)
//!     .map(|k| {
//!         server
//!             .submit(ProductRequest::new(a.clone(), UBig::from(k)))
//!             .expect("server alive")
//!     })
//!     .collect();
//! for (k, ticket) in (1..=4u64).zip(tickets) {
//!     assert_eq!(ticket.wait().expect("served"), &a * &UBig::from(k));
//! }
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 4);
//! # Ok::<(), he_accel::MultiplyError>(())
//! ```
//!
//! # Example: a two-card fleet
//!
//! ```
//! use he_accel::prelude::*;
//!
//! // Two resident engines (two simulated cards) share one queue.
//! let cards = vec![
//!     EvalEngine::new(SsaSoftware::for_operand_bits(256)?),
//!     EvalEngine::new(SsaSoftware::for_operand_bits(256)?),
//! ];
//! let pool = ServerPool::spawn(cards, ServeConfig::default());
//! assert_eq!(pool.workers(), 2);
//! let a = UBig::from(1_000_003u64);
//! let tickets: Vec<ProductTicket> = (1..=8u64)
//!     .map(|k| {
//!         pool.submit(ProductRequest::new(a.clone(), UBig::from(k)))
//!             .expect("pool alive")
//!     })
//!     .collect();
//! for (k, ticket) in (1..=8u64).zip(tickets) {
//!     assert_eq!(ticket.wait().expect("served"), &a * &UBig::from(k));
//! }
//! let stats = pool.shutdown();
//! assert_eq!(stats.total().completed, 8);
//! assert_eq!(stats.per_worker.len(), 2);
//! # Ok::<(), he_accel::MultiplyError>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use he_bigint::UBig;
use he_dghv::{CiphertextMultiplier, PreparedFactor};
use he_ntt::par::lock_or_recover;

use crate::engine::{EvalEngine, OperandHandle, ProductJob};
use crate::multiplier::{Multiplier, MultiplyError};

/// How a card picks jobs out of the shared queue when it claims a flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Earliest-deadline-first: a flush takes the pending jobs with the
    /// earliest deadlines (deadline-less jobs rank last, in arrival
    /// order). Under overload this serves urgent jobs while they can
    /// still make it, expiring strictly fewer jobs than arrival order;
    /// with no deadlines in play it degenerates to FIFO exactly.
    #[default]
    Edf,
    /// Strict arrival order, deadlines ignored for *selection* (expiry
    /// and early-flush pulls still apply). The baseline `bench_fleet`
    /// compares EDF against.
    Fifo,
}

/// How jobs are matched to cards when a fleet's transform geometries
/// differ.
///
/// ```
/// use he_accel::prelude::*;
/// use std::time::Duration;
///
/// // A small card and a big card behind one queue: by-size routing
/// // sends each job to a card whose transform fits it.
/// let pool = ServerPool::spawn(
///     vec![
///         EvalEngine::new(SsaSoftware::for_operand_bits(2_000)?),
///         EvalEngine::new(SsaSoftware::for_operand_bits(100_000)?),
///     ],
///     ServeConfig {
///         route: RoutePolicy::BySize,
///         max_delay: Duration::from_millis(1),
///         ..ServeConfig::default()
///     },
/// );
/// let big = UBig::pow2(50_000); // only the 100k-bit card can run this
/// let ticket = pool.submit(ProductRequest::new(big.clone(), UBig::from(3u64)))?;
/// assert_eq!(ticket.wait().expect("routed to the big card"), &big * &UBig::from(3u64));
/// assert_eq!(pool.shutdown().total().failed, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoutePolicy {
    /// One shared queue, any card claims any job — the right default for
    /// homogeneous fleets (every card can run everything).
    #[default]
    Shared,
    /// A card only claims jobs whose operands fit its transform geometry
    /// ([`crate::Multiplier::operand_capacity_bits`]), so a heterogeneous
    /// fleet — small fast cards next to big ones — serves mixed-size
    /// traffic with zero capacity failures. A job too big for every
    /// *live* card stays claimable by all of them (it fails fast with
    /// the backend's own typed error instead of waiting forever — also
    /// when the one card that fitted it has died).
    BySize,
}

/// Tuning knobs of a [`ProductServer`] / [`ServerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded submission-queue depth: [`Submitter::submit`] blocks and
    /// [`Submitter::try_submit`] sheds once this many jobs are waiting
    /// (minimum 1). Claimed micro-batches no longer count against the
    /// bound.
    pub queue_capacity: usize,
    /// Flush a micro-batch when this many jobs are pending (minimum 1).
    pub max_batch: usize,
    /// Flush a micro-batch when the oldest pending job has waited this
    /// long, even if the batch is not full — bounds added latency under
    /// light traffic.
    pub max_delay: Duration,
    /// How a flush selects its jobs from the shared queue (see
    /// [`FlushPolicy`]).
    pub policy: FlushPolicy,
    /// How jobs are matched to cards of differing transform geometry
    /// (see [`RoutePolicy`]; irrelevant on homogeneous fleets).
    pub route: RoutePolicy,
    /// Prepared-handle cache entries retained **per card** (LRU); `0`
    /// disables caching and every job runs as a raw three-transform
    /// product. Each entry holds the operand plus its full cached
    /// spectrum (at the paper's 64K-point plan roughly 0.6 MB), so this
    /// knob bounds each card's resident memory. Backends whose handles
    /// cache nothing (the classical algorithms) disable the cache
    /// automatically.
    pub cache_capacity: usize,
    /// After this long with no traffic a card releases its backend's idle
    /// working memory ([`Multiplier::trim_resources`]) **and** its
    /// prepared-handle cache — a resident server must not pin a burst's
    /// worth of multi-MB scratch and spectra forever. The next burst
    /// re-prepares the operands it actually reuses.
    pub idle_trim_after: Duration,
    /// A recurring operand becomes *hot* — eligible to drive speculative
    /// preparation of its fresh partners — once its digest has hit a
    /// card's prepared-handle cache this many times (minimum 1; only
    /// consulted when the pool runs a speculative preparer).
    pub speculate_hot_after: u32,
    /// Speculatively prepared handles retained in the pool-shared staging
    /// store before cards claim them (oldest evicted first).
    pub speculate_store_capacity: usize,
    /// How many times a failed job is re-queued before the fleet gives
    /// up on it. A job in a **panicked** flush is re-queued to the
    /// surviving cards (and isolated: it runs alone until it proves
    /// innocent) until it has taken down `retry_limit + 1` flushes — then
    /// it is quarantined with [`ServeError::Poisoned`]. A job failing
    /// with a *transient* device fault ([`MultiplyError::Device`]) is
    /// re-queued the same number of times before its error is delivered.
    /// Retries honor the job's deadline budget; `0` disables retrying.
    pub retry_limit: u32,
    /// On a factory-supervised pool ([`ServerPool::with_backend_factory`]),
    /// how many **consecutive** restarts a card may attempt without
    /// completing a single clean flush in between, before it is declared
    /// [`CardHealth::Dead`]. A clean flush refills the budget.
    pub restart_cap: u32,
    /// Backoff before the first restart attempt of a panicked card;
    /// doubles per consecutive attempt (capped at ~1 s).
    pub restart_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            policy: FlushPolicy::Edf,
            route: RoutePolicy::Shared,
            cache_capacity: 128,
            idle_trim_after: Duration::from_millis(250),
            speculate_hot_after: 2,
            speculate_store_capacity: 32,
            retry_limit: 2,
            restart_cap: 3,
            restart_backoff: Duration::from_millis(10),
        }
    }
}

/// One side of a product request: an inline operand, or a reference to
/// an operand a [`ClientSession`] registered (pinned in every card's
/// cache by id — resolved without hashing the operand's data).
#[derive(Debug, Clone)]
enum Operand {
    Inline(UBig),
    Pinned { id: u64, value: Arc<UBig> },
}

impl Operand {
    fn value(&self) -> &UBig {
        match self {
            Operand::Inline(value) => value,
            Operand::Pinned { value, .. } => value,
        }
    }
}

/// One product job: two owned operands and an optional deadline.
#[derive(Debug, Clone)]
pub struct ProductRequest {
    a: Operand,
    b: Operand,
    deadline: Option<Instant>,
}

impl ProductRequest {
    /// A request to multiply `a · b` with no deadline.
    pub fn new(a: UBig, b: UBig) -> ProductRequest {
        ProductRequest {
            a: Operand::Inline(a),
            b: Operand::Inline(b),
            deadline: None,
        }
    }

    /// Attaches a deadline `timeout` from now: if the job has not
    /// *started executing* by then, it is answered with
    /// [`ServeError::Expired`] instead of occupying a card. A deadline
    /// inside the micro-batch window pulls its flush earlier (scheduled a
    /// small margin before the deadline so execution starts in time), and
    /// under [`FlushPolicy::Edf`] an earlier deadline also wins a seat in
    /// the next flush; deadlines tighter than that scheduling margin
    /// (~0.5 ms) are best-effort even on an idle server.
    pub fn with_deadline(mut self, timeout: Duration) -> ProductRequest {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// The operands.
    pub fn operands(&self) -> (&UBig, &UBig) {
        (self.a.value(), self.b.value())
    }

    /// The absolute deadline, if one was attached.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The pin ids riding this request's operands (`None` for an inline
    /// side). Remote [`Submitter`] implementations use this to ship a
    /// pinned operand as its id alone instead of re-serializing the
    /// operand's bytes on every submission — the whole point of pinning,
    /// preserved across a wire.
    pub fn operand_pins(&self) -> (Option<u64>, Option<u64>) {
        let pin = |operand: &Operand| match operand {
            Operand::Pinned { id, .. } => Some(*id),
            Operand::Inline(_) => None,
        };
        (pin(&self.a), pin(&self.b))
    }

    /// A request multiplying a **pinned** operand (carried by `id` with
    /// its registered value) by a fresh inline operand.
    ///
    /// This is the constructor for remote transports that manage their
    /// own pin namespace (a network session registering operands on a
    /// far-end fleet). Local callers should pin through
    /// [`ClientSession::register`]/[`ClientSession::request_with`]
    /// instead: pin ids are pool-global, and a request built here with an
    /// id from a different namespace resolves against whatever that id
    /// means on the pool it is submitted to.
    pub fn pinned_with(id: u64, value: Arc<UBig>, fresh: UBig) -> ProductRequest {
        ProductRequest {
            a: Operand::Pinned { id, value },
            b: Operand::Inline(fresh),
            deadline: None,
        }
    }

    /// A request multiplying two **pinned** operands — the remote-
    /// transport counterpart of [`ClientSession::request_between`]; the
    /// same namespace caveat as [`ProductRequest::pinned_with`] applies.
    pub fn pinned_pair(a: (u64, Arc<UBig>), b: (u64, Arc<UBig>)) -> ProductRequest {
        ProductRequest {
            a: Operand::Pinned {
                id: a.0,
                value: a.1,
            },
            b: Operand::Pinned {
                id: b.0,
                value: b.1,
            },
            deadline: None,
        }
    }

    /// The job's size for routing: the wider of its two operands, in
    /// bits.
    fn required_bits(&self) -> usize {
        self.a.value().bit_len().max(self.b.value().bit_len())
    }
}

/// Why a served product failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The job's deadline passed before execution — either while it
    /// waited in the shared queue, or during its own flush's preparation
    /// phase (the two cases are attributed separately in [`ServeStats`]).
    Expired {
        /// How far past the deadline the job was when the server gave up
        /// on it.
        missed_by: Duration,
    },
    /// The backend rejected the product (capacity, parameters).
    Multiply(MultiplyError),
    /// The job was **quarantined**: every flush that included it took its
    /// card down (a panic in the backend — see the supervision story in
    /// the module docs), and after `attempts` such strikes the fleet
    /// answers the job with this error instead of letting it kill another
    /// card. Batch-mates of a poisonous job are re-queued and served by
    /// the surviving (or restarted) cards; only the job the failures
    /// isolate is quarantined.
    Poisoned {
        /// Flushes this job took down before the fleet gave up on it
        /// (`ServeConfig::retry_limit` + 1).
        attempts: u32,
    },
    /// The server shut down before delivering a result.
    Closed,
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServeError::Expired { missed_by } => {
                write!(f, "job deadline expired {missed_by:?} before execution")
            }
            ServeError::Multiply(e) => write!(f, "{e}"),
            ServeError::Poisoned { attempts } => write!(
                f,
                "job quarantined after taking down {attempts} consecutive flushes"
            ),
            ServeError::Closed => write!(f, "product server closed before delivering a result"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Multiply(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MultiplyError> for ServeError {
    fn from(e: MultiplyError) -> ServeError {
        ServeError::Multiply(e)
    }
}

/// Why a submission was not accepted; the request is handed back so the
/// caller can retry, reroute or shed it.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full (only [`Submitter::try_submit`] reports
    /// this; [`Submitter::submit`] blocks instead).
    Full(ProductRequest),
    /// Every worker is gone (shutdown, or the last card panicked).
    Closed(ProductRequest),
}

impl SubmitError {
    /// Recovers the rejected request.
    pub fn into_request(self) -> ProductRequest {
        match self {
            SubmitError::Full(request) | SubmitError::Closed(request) => request,
        }
    }
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "submission queue is full"),
            SubmitError::Closed(_) => write!(f, "product server is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Claim on one submitted job's result.
///
/// A ticket resolves exactly once — to the product, or to a typed
/// [`ServeError`] — and never hangs: if the serving worker dies (panic
/// included) or the job is dropped at shutdown, the ticket resolves to
/// [`ServeError::Closed`]. Dropping a ticket is a fire-and-forget
/// submission (the job still runs; its result is discarded);
/// [`ProductTicket::cancel`] additionally asks the fleet to *not* run a
/// still-queued job.
///
/// ```
/// use he_accel::prelude::*;
/// use std::time::Duration;
///
/// let server = ProductServer::spawn(
///     EvalEngine::new(SsaSoftware::for_operand_bits(256)?),
///     ServeConfig::default(),
/// );
/// let mut ticket = server.submit(ProductRequest::new(
///     UBig::from(6u64),
///     UBig::from(7u64),
/// ))?;
/// // Poll without blocking, bound the wait, or block — same ticket.
/// let product = match ticket.try_wait() {
///     Some(resolved) => resolved.expect("served"),
///     None => match ticket.wait_timeout(Duration::from_secs(30)) {
///         Some(resolved) => resolved.expect("served"),
///         None => ticket.wait().expect("served"),
///     },
/// };
/// assert_eq!(product, UBig::from(42u64));
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ProductTicket {
    rx: mpsc::Receiver<Result<UBig, ServeError>>,
    cancelled: Arc<AtomicBool>,
}

impl ProductTicket {
    /// Blocks until the job's micro-batch is flushed and returns the
    /// product (or the job's typed failure).
    ///
    /// # Errors
    ///
    /// [`ServeError::Expired`] when the deadline passed before execution,
    /// [`ServeError::Multiply`] when the backend rejected the product, and
    /// [`ServeError::Closed`] when the server shut down first.
    pub fn wait(self) -> Result<UBig, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Polls the ticket without blocking: `None` while the job is still
    /// queued or executing, `Some(outcome)` once it resolved. A ticket
    /// resolves once; polling again after taking the outcome reports
    /// [`ServeError::Closed`].
    pub fn try_wait(&mut self) -> Option<Result<UBig, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }

    /// Blocks for at most `timeout`: `None` if the job has not resolved
    /// by then (the ticket stays valid — wait again, poll, or cancel),
    /// `Some(outcome)` once it has. A dead fleet resolves the ticket to
    /// [`ServeError::Closed`] rather than running out the timeout.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<Result<UBig, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }

    /// Withdraws the job: if it is still queued when a card claims its
    /// flush, it is dropped without running (counted in
    /// [`ServeStats::cancelled`]). Cancellation is best-effort — a job
    /// already claimed into a flush runs to completion; its result is
    /// discarded like any dropped ticket's.
    pub fn cancel(self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// A ticket resolved by the caller instead of by a local fleet — the
    /// building block for **remote** [`Submitter`] implementations: the
    /// transport hands the ticket to its client and resolves it from the
    /// connection's reader thread when the far end answers.
    ///
    /// The never-hangs contract survives the split: dropping the
    /// [`TicketResolver`] unresolved (connection lost, transport shut
    /// down) makes every wait on the ticket report
    /// [`ServeError::Closed`]. Cancelling the ticket raises a flag the
    /// resolver side can observe ([`TicketResolver::is_cancelled`]) and
    /// forward to the far end.
    pub fn remote() -> (ProductTicket, TicketResolver) {
        let (tx, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let ticket = ProductTicket {
            rx,
            cancelled: Arc::clone(&cancelled),
        };
        (ticket, TicketResolver { tx, cancelled })
    }
}

/// The resolving half of [`ProductTicket::remote`]: whoever holds it
/// answers the ticket exactly once — or drops it, which resolves the
/// ticket to [`ServeError::Closed`].
#[derive(Debug)]
pub struct TicketResolver {
    tx: mpsc::Sender<Result<UBig, ServeError>>,
    cancelled: Arc<AtomicBool>,
}

impl TicketResolver {
    /// Delivers the ticket's outcome. A ticket whose holder stopped
    /// listening (dropped it) absorbs the outcome silently.
    pub fn resolve(self, outcome: Result<UBig, ServeError>) {
        let _ = self.tx.send(outcome);
    }

    /// Whether the ticket side called [`ProductTicket::cancel`] — a
    /// remote transport polls this to forward the withdrawal to the far
    /// end (cancellation stays best-effort, exactly as locally).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Best-effort withdrawal handle for a sink-bound submission — what
/// [`ProductTicket::cancel`] is to a ticket-bound one. Minted by
/// [`ClientSession::submit_into_cancellable`] so a server-side front end
/// (e.g. a network connection reactor) can honor an out-of-band cancel
/// message for a job whose completion travels through a
/// [`CompletionSink`]: if the job is still queued when a card claims its
/// flush, it is dropped without running (counted in
/// [`ServeStats::cancelled`]) and its sink resolves
/// [`ServeError::Closed`].
#[derive(Debug, Clone)]
pub struct CancelHandle {
    cancelled: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Asks the fleet not to run the job if it has not been claimed yet.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested through this handle.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// Lifetime counters of one serving worker (one card), returned by
/// [`ProductServer::shutdown`] and, per card, by [`ServerPool::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Micro-batches flushed.
    pub flushes: u64,
    /// Jobs answered with a product.
    pub completed: u64,
    /// Jobs answered with a backend error.
    pub failed: u64,
    /// Jobs whose deadline had already passed when a card dequeued them —
    /// they expired **in the queue**, so the miss is attributable to
    /// queueing (arrival rate vs fleet capacity), not to the flush that
    /// found them.
    pub expired_in_queue: u64,
    /// Jobs that were still live when their flush was claimed but whose
    /// deadline passed during the flush's preparation phase — the miss is
    /// attributable to **compute** (the flush itself ran too long), not
    /// to queueing.
    pub expired_in_flush: u64,
    /// Jobs withdrawn by [`ProductTicket::cancel`] and dropped at claim
    /// time without running.
    pub cancelled: u64,
    /// Non-blocking submissions rejected with [`SubmitError::Full`] —
    /// load the bounded queue shed instead of buffering. Counted at the
    /// pool level (no card ever saw the job) and folded into the roll-up
    /// by [`PoolStats::total`].
    pub shed: u64,
    /// Operand lookups that hit the card's cached prepared handles.
    pub cache_hits: u64,
    /// Operand lookups that paid a fresh preparation.
    pub cache_misses: u64,
    /// Operand lookups resolved from the card's **pinned** handles — the
    /// operands a [`ClientSession::register`] call pinned by id, served
    /// without hashing the operand's data at all.
    pub pinned_hits: u64,
    /// Operand lookups answered by the pool's speculative preparer — the
    /// spectrum was ready before the flush started, off the critical
    /// path.
    pub speculative_hits: u64,
    /// Largest single flush, in jobs.
    pub largest_flush: usize,
    /// Idle-trim passes (backend scratch released after a quiet period).
    pub idle_trims: u64,
    /// Jobs re-queued after a panicked or transiently-failing flush —
    /// each re-queue counts once, on the card whose flush failed (see
    /// [`ServeConfig::retry_limit`]).
    pub retried: u64,
    /// Solo re-runs of jobs from a batch that reported an error — the
    /// per-job isolation pass that keeps one bad product from failing its
    /// batch-mates.
    pub reruns: u64,
    /// Times this card's engine was rebuilt from the backend factory
    /// after a panic ([`ServerPool::with_backend_factory`]).
    pub restarts: u64,
    /// Jobs quarantined with [`ServeError::Poisoned`] after exhausting
    /// their retry budget on panicked flushes.
    pub poisoned: u64,
}

impl ServeStats {
    /// Total jobs answered with [`ServeError::Expired`], wherever the
    /// deadline was missed.
    pub fn expired(&self) -> u64 {
        self.expired_in_queue + self.expired_in_flush
    }

    /// Folds another worker's counters into this one (counter fields add;
    /// `largest_flush` takes the maximum).
    pub fn absorb(&mut self, other: &ServeStats) {
        self.flushes += other.flushes;
        self.completed += other.completed;
        self.failed += other.failed;
        self.expired_in_queue += other.expired_in_queue;
        self.expired_in_flush += other.expired_in_flush;
        self.cancelled += other.cancelled;
        self.shed += other.shed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.pinned_hits += other.pinned_hits;
        self.speculative_hits += other.speculative_hits;
        self.largest_flush = self.largest_flush.max(other.largest_flush);
        self.idle_trims += other.idle_trims;
        self.retried += other.retried;
        self.reruns += other.reruns;
        self.restarts += other.restarts;
        self.poisoned += other.poisoned;
    }
}

/// Supervision state of one card of a fleet (see [`PoolStats::health`]
/// and the card-health state diagram in `ARCHITECTURE.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CardHealth {
    /// Serving normally.
    #[default]
    Live,
    /// The card's worker caught a backend panic and is rebuilding its
    /// engine from the pool's backend factory (backoff, re-prepare,
    /// pin replay). It claims no jobs while restarting.
    Restarting,
    /// The card is gone for good: it panicked on a pool with no backend
    /// factory, or exhausted [`ServeConfig::restart_cap`] consecutive
    /// restart attempts. [`RoutePolicy::BySize`] stops routing to it;
    /// the fleet serves on with the survivors.
    Dead,
}

/// Counters of a whole fleet: one [`ServeStats`] per card plus the
/// pool-level speculation counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Per-card lifetime counters, in card order.
    pub per_worker: Vec<ServeStats>,
    /// Operands the speculative preparer transformed off the critical
    /// path (whether or not a card ended up claiming them).
    pub speculative_prepares: u64,
    /// Non-blocking submissions the pool rejected with
    /// [`SubmitError::Full`] — shed load that no card ever saw.
    pub shed: u64,
    /// Per-card supervision state, in card order (see [`CardHealth`]).
    /// [`ServerPool::shutdown`] and [`ServerPool::drain`] snapshot this
    /// *before* closing the queue, so a clean exit still reports the
    /// fleet's serving-time health.
    pub health: Vec<CardHealth>,
}

impl PoolStats {
    /// The fleet-wide roll-up of every card's counters, with the
    /// pool-level shed count folded into [`ServeStats::shed`].
    pub fn total(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for worker in &self.per_worker {
            total.absorb(worker);
        }
        total.shed += self.shed;
        total
    }
}

/// The submission surface shared by [`ProductServer`] and [`ServerPool`]
/// — everything a client (or [`ServedMultiplier`]) needs to feed a
/// resident serving front.
pub trait Submitter {
    /// Submits a job, **blocking** while the bounded queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (with the request handed back) if every
    /// worker is gone.
    fn submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError>;

    /// Submits a job without blocking: a full queue returns
    /// [`SubmitError::Full`] with the request handed back — the
    /// backpressure signal for load-shedding producers (counted in
    /// [`ServeStats::shed`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] if every worker is gone.
    fn try_submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError>;

    /// Submits a job whose completion is delivered through `sink` — onto
    /// the [`CompletionQueue`] that minted it — instead of a per-job
    /// ticket. Blocks while the queue is full, like [`Submitter::submit`].
    /// Wrappers forward this to their inner submitter; clients use
    /// [`CompletionQueue::submit_tagged`] rather than calling it
    /// directly.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (with the request handed back) if every
    /// worker is gone.
    fn submit_into(&self, request: ProductRequest, sink: CompletionSink)
        -> Result<(), SubmitError>;

    /// Non-blocking [`Submitter::submit_into`]: a full queue returns
    /// [`SubmitError::Full`] with the request handed back (counted in
    /// [`ServeStats::shed`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] if every worker is gone.
    fn try_submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError>;
}

/// One job's slot on a [`CompletionQueue`]: carries the queue's shared
/// sender and the job's tag id. Minted by [`CompletionQueue::submit_tagged`],
/// consumed by the serving worker when it delivers the outcome — and
/// guaranteed to deliver exactly once: a sink dropped without an outcome
/// (worker panic, shutdown with the job still queued) reports
/// [`ServeError::Closed`], so a reactor draining the queue never hangs
/// on a job the fleet lost.
#[derive(Debug)]
pub struct CompletionSink {
    tx: mpsc::Sender<(u64, Result<UBig, ServeError>)>,
    tag: u64,
    sent: bool,
}

impl CompletionSink {
    /// Delivers the job's outcome to the owning [`CompletionQueue`].
    /// Wrapper [`Submitter`]s that execute jobs themselves (rather than
    /// forwarding to an inner fleet) complete their jobs through this.
    pub fn complete(mut self, outcome: Result<UBig, ServeError>) {
        self.sent = true;
        // A dropped CompletionQueue is a caller that stopped listening.
        let _ = self.tx.send((self.tag, outcome));
    }
}

impl Drop for CompletionSink {
    fn drop(&mut self) {
        if !self.sent {
            let _ = self.tx.send((self.tag, Err(ServeError::Closed)));
        }
    }
}

/// One resolved job from a [`CompletionQueue`]: the caller's tag and the
/// job's outcome.
#[derive(Debug)]
pub struct Completion<T> {
    /// The tag supplied at [`CompletionQueue::submit_tagged`].
    pub tag: T,
    /// The job's outcome — same contract as [`ProductTicket::wait`].
    pub result: Result<UBig, ServeError>,
}

/// A single-receiver multiplexer over many in-flight submissions: the
/// non-blocking, completion-driven alternative to holding one
/// [`ProductTicket`] (and one blocked thread) per job.
///
/// Submissions carry a caller-supplied tag; completions come back **in
/// completion order** — whichever flush finishes first — each carrying
/// its tag, so one reactor thread keeps an arbitrary number of products
/// in flight: submit until the window is full, [`CompletionQueue::recv`]
/// one completion, submit the next. Works over any [`Submitter`]: a
/// [`ProductServer`], a [`ServerPool`], or a [`ClientSession`] (tags
/// then ride pinned-operand requests too).
///
/// ```
/// use he_accel::prelude::*;
///
/// let server = ProductServer::spawn(
///     EvalEngine::new(SsaSoftware::for_operand_bits(256)?),
///     ServeConfig::default(),
/// );
/// let mut queue = CompletionQueue::new(&server);
/// for k in 2..6u64 {
///     queue
///         .submit_tagged(ProductRequest::new(UBig::from(k), UBig::from(k)), k)
///         .map_err(|(e, _)| e)?;
/// }
/// assert_eq!(queue.in_flight(), 4);
/// // One thread drains all four, in whatever order the fleet finished.
/// while let Some(done) = queue.recv() {
///     assert_eq!(done.result.expect("served"), UBig::from(done.tag * done.tag));
/// }
/// assert_eq!(queue.in_flight(), 0);
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CompletionQueue<'a, S: Submitter + ?Sized, T = u64> {
    submitter: &'a S,
    tx: mpsc::Sender<(u64, Result<UBig, ServeError>)>,
    rx: mpsc::Receiver<(u64, Result<UBig, ServeError>)>,
    /// Tag id → the caller's tag, for every job still in flight.
    tags: HashMap<u64, T>,
    next_id: u64,
}

impl<'a, S: Submitter + ?Sized, T> CompletionQueue<'a, S, T> {
    /// A completion queue feeding `submitter`.
    pub fn new(submitter: &'a S) -> CompletionQueue<'a, S, T> {
        let (tx, rx) = mpsc::channel();
        CompletionQueue {
            submitter,
            tx,
            rx,
            tags: HashMap::new(),
            next_id: 0,
        }
    }

    fn sink(&mut self, tag: T) -> (u64, CompletionSink) {
        let id = self.next_id;
        self.next_id += 1;
        self.tags.insert(id, tag);
        (
            id,
            CompletionSink {
                tx: self.tx.clone(),
                tag: id,
                sent: false,
            },
        )
    }

    /// Submits a job under `tag`, **blocking** while the bounded queue is
    /// full. The tag comes back with the job's completion.
    ///
    /// # Errors
    ///
    /// `(SubmitError::Closed, tag)` — request and tag both handed back —
    /// if every worker is gone.
    pub fn submit_tagged(
        &mut self,
        request: ProductRequest,
        tag: T,
    ) -> Result<(), (SubmitError, T)> {
        let (id, sink) = self.sink(tag);
        self.submitter.submit_into(request, sink).map_err(|error| {
            (
                error,
                self.tags.remove(&id).expect("tag registered just now"),
            )
        })
    }

    /// Non-blocking [`CompletionQueue::submit_tagged`]: a full queue
    /// hands request and tag back instead of blocking.
    ///
    /// # Errors
    ///
    /// `(SubmitError::Full, tag)` when the queue is at capacity,
    /// `(SubmitError::Closed, tag)` if every worker is gone.
    pub fn try_submit_tagged(
        &mut self,
        request: ProductRequest,
        tag: T,
    ) -> Result<(), (SubmitError, T)> {
        let (id, sink) = self.sink(tag);
        self.submitter
            .try_submit_into(request, sink)
            .map_err(|error| {
                (
                    error,
                    self.tags.remove(&id).expect("tag registered just now"),
                )
            })
    }

    /// Jobs submitted through this queue that have not completed yet.
    pub fn in_flight(&self) -> usize {
        self.tags.len()
    }

    /// Blocks for the next completion, in completion order. Returns
    /// `None` when nothing is in flight. Never hangs on a dead fleet:
    /// every accepted job's sink reports [`ServeError::Closed`] when it
    /// is dropped unanswered.
    pub fn recv(&mut self) -> Option<Completion<T>> {
        loop {
            if self.tags.is_empty() {
                return None;
            }
            // The queue holds its own sender, so the channel never
            // disconnects. Ids no longer registered are skipped: a
            // submission that failed after minting its sink delivers a
            // spurious `Closed` for a tag already handed back.
            let (id, result) = self.rx.recv().expect("queue holds a sender");
            if let Some(tag) = self.tags.remove(&id) {
                return Some(Completion { tag, result });
            }
        }
    }

    /// Non-blocking [`CompletionQueue::recv`]: `None` when no completion
    /// is ready right now (or nothing is in flight).
    pub fn try_recv(&mut self) -> Option<Completion<T>> {
        loop {
            if self.tags.is_empty() {
                return None;
            }
            let (id, result) = self.rx.try_recv().ok()?;
            if let Some(tag) = self.tags.remove(&id) {
                return Some(Completion { tag, result });
            }
        }
    }

    /// Bounded [`CompletionQueue::recv`]: `None` if no completion arrives
    /// within `timeout` (or nothing is in flight).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Option<Completion<T>> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.tags.is_empty() {
                return None;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (id, result) = self.rx.recv_timeout(remaining).ok()?;
            if let Some(tag) = self.tags.remove(&id) {
                return Some(Completion { tag, result });
            }
        }
    }

    /// Blocks until every in-flight job has completed and returns the
    /// completions in completion order.
    pub fn drain(&mut self) -> Vec<Completion<T>> {
        let mut done = Vec::with_capacity(self.tags.len());
        while let Some(completion) = self.recv() {
            done.push(completion);
        }
        done
    }
}

/// An **owned** mint/receiver pair for [`CompletionSink`]s — the
/// [`CompletionQueue`] reactor pattern detached from any borrowed
/// submitter, so the two halves can live on different threads with
/// independent lifetimes. A server-side reactor (e.g. a socket writer
/// thread draining one connection's completions) owns the
/// [`CompletionReceiver`] outright, while whatever accepts jobs keeps the
/// [`CompletionMint`] (`Clone`) and attaches a sink per submission via
/// [`Submitter::submit_into`].
///
/// The exactly-once delivery contract is the sink's own: a sink dropped
/// unanswered reports [`ServeError::Closed`], and
/// [`CompletionReceiver::recv`] returns `None` only once the mint and
/// every outstanding sink are gone — the receiver's loop terminates
/// naturally when the producing side shuts down.
pub fn completion_channel() -> (CompletionMint, CompletionReceiver) {
    let (tx, rx) = mpsc::channel();
    (CompletionMint { tx }, CompletionReceiver { rx })
}

/// The minting half of [`completion_channel`]: stamps
/// [`CompletionSink`]s, each tagged with a caller-chosen `u64`, all
/// delivering to the paired [`CompletionReceiver`].
#[derive(Debug, Clone)]
pub struct CompletionMint {
    tx: mpsc::Sender<(u64, Result<UBig, ServeError>)>,
}

impl CompletionMint {
    /// A sink delivering `(tag, outcome)` to the paired receiver.
    pub fn sink(&self, tag: u64) -> CompletionSink {
        CompletionSink {
            tx: self.tx.clone(),
            tag,
            sent: false,
        }
    }
}

/// The draining half of [`completion_channel`]: completions arrive in
/// completion order, each carrying the tag its sink was minted with.
#[derive(Debug)]
pub struct CompletionReceiver {
    rx: mpsc::Receiver<(u64, Result<UBig, ServeError>)>,
}

impl CompletionReceiver {
    /// Blocks for the next completion. Returns `None` once the mint and
    /// every outstanding sink have been dropped — the clean-shutdown
    /// signal for a reactor draining this receiver.
    pub fn recv(&self) -> Option<(u64, Result<UBig, ServeError>)> {
        self.rx.recv().ok()
    }

    /// Non-blocking [`CompletionReceiver::recv`]: `None` when no
    /// completion is ready right now *or* the channel is finished — use
    /// the blocking form to distinguish shutdown from idleness.
    pub fn try_recv(&self) -> Option<(u64, Result<UBig, ServeError>)> {
        self.rx.try_recv().ok()
    }
}

/// How far before a job's deadline its flush is scheduled. The margin
/// must cover the worker's wakeup-and-dispatch latency *and* the flush's
/// own operand-preparation phase (the in-flush expiry check runs after
/// prepare): a flush fired *at* the deadline would start execution just
/// past it and expire the very job the early flush was meant to save.
/// Condvar wakeup overshoot alone is routinely past 1 ms on a loaded
/// host, so this is milliseconds, not microseconds.
const DEADLINE_SCHEDULING_MARGIN: Duration = Duration::from_millis(10);

/// Where a job's outcome goes: a per-job ticket channel, or a tagged
/// slot on a client's [`CompletionQueue`].
#[derive(Debug)]
enum ReplySink {
    Ticket(mpsc::Sender<Result<UBig, ServeError>>),
    Tagged(CompletionSink),
}

impl ReplySink {
    fn send(self, outcome: Result<UBig, ServeError>) {
        match self {
            // A dropped ticket is a caller that stopped listening — fine.
            ReplySink::Ticket(tx) => {
                let _ = tx.send(outcome);
            }
            ReplySink::Tagged(sink) => sink.complete(outcome),
        }
    }
}

/// One buffered answer: the job's reply sink and its outcome (flushes
/// deliver these only after publishing their stats).
type Reply = (ReplySink, Result<UBig, ServeError>);

struct Submitted {
    request: ProductRequest,
    enqueued: Instant,
    /// Arrival order, the FIFO rank and the EDF tie-breaker.
    seq: u64,
    /// `(digest(a), digest(b))`, stamped at submission **outside** the
    /// queue lock — only on speculative pools, and only for fully inline
    /// requests — so the speculative preparer's queue scans never hash
    /// multi-hundred-KB operands while holding the mutex every submitter
    /// and card contends on.
    digests: Option<(u64, u64)>,
    /// The wider operand's bit length, stamped at submission so
    /// [`RoutePolicy::BySize`] eligibility checks under the queue lock
    /// are integer compares.
    required_bits: usize,
    /// Set by [`ProductTicket::cancel`]; a card claiming the job drops
    /// it without running.
    cancelled: Arc<AtomicBool>,
    /// When a card dequeued the job (stamped on claim; equals `enqueued`
    /// until then). In-queue expiry compares against this: a deadline
    /// already past at dequeue is hopeless, while one still ahead is
    /// honored by pulling the flush to start before it — so expiry is
    /// decided by the ordering of two events, not by how fast a worker
    /// happens to wake.
    seen: Instant,
    /// Times this job has been re-queued after a failed flush (panic or
    /// transient device fault); [`ServeConfig::retry_limit`] bounds it.
    retries: u32,
    /// Set when the job was part of a **panicked** flush: until it proves
    /// innocent, it is claimed alone — a poisonous job must not take
    /// batch-mates down with it twice.
    suspect: bool,
    reply: ReplySink,
}

/// The shared (backend-agnostic) half of a fleet: the bounded queue, the
/// speculation rendezvous, and the live per-card stats slots.
struct PoolShared {
    config: ServeConfig,
    /// Per-card operand capacity in bits (`None` = unbounded), in card
    /// order — what [`RoutePolicy::BySize`] routes against.
    capacities: Vec<Option<usize>>,
    /// Per-card supervision state ([`CardHealth`] encoded as a `u8`), in
    /// card order. A worker that exits for good (panic on an unsupervised
    /// pool, restart cap exhausted, shutdown) marks its slot `Dead` so
    /// [`RoutePolicy::BySize`] stops routing to a card that will never
    /// claim again — a job only a dead card fits becomes claimable by
    /// every survivor and fails fast with the backend's typed error
    /// instead of hanging. `Restarting` cards still count as routable:
    /// they come back.
    card_health: Vec<AtomicU8>,
    state: Mutex<QueueState>,
    /// Signaled on every push and on close; workers and the speculative
    /// preparer wait here.
    not_empty: Condvar,
    /// Signaled on every claim and on close; blocking submitters wait
    /// here.
    not_full: Condvar,
    seq: AtomicU64,
    /// Cards still running; the last one to exit (panic included) closes
    /// the queue so submitters cannot block on a dead fleet.
    workers_alive: AtomicUsize,
    /// Cards currently parked in their post-trim idle state. The
    /// pool-shared speculative state (hot statistics, staged spectra) is
    /// only cleared when **every** card is idle: one starved card timing
    /// out while its siblings chew through a long burst is not fleet
    /// idleness, and wiping the shared state then would defeat
    /// speculation exactly under sustained load.
    trimmed_cards: AtomicUsize,
    /// Per-card stats snapshots, refreshed at every flush boundary so
    /// [`ServerPool::stats`] can observe a live fleet.
    live: Vec<Mutex<ServeStats>>,
    /// Whether a speculative preparer is running (hot-digest tracking is
    /// skipped entirely when not).
    speculation: bool,
    /// Digest → cache-hit count, aggregated across cards; the speculative
    /// preparer reads it to find hot recurring operands.
    hot: Mutex<HashMap<u64, u32>>,
    /// Speculatively prepared handles staged for cards to claim.
    spec_store: Mutex<SpecStore>,
    spec_prepares: AtomicU64,
    /// Non-blocking submissions rejected because the queue was full.
    shed: AtomicU64,
    /// Id source for [`ClientSession::register`] pins — pool-global so
    /// no two sessions (or re-registrations) ever share an id. The
    /// operand itself travels with each request (an `Arc` clone), so
    /// cards prepare pins lazily from the job in hand.
    pin_seq: AtomicU64,
    /// Every live session registration `(pin id, operand)`, insertion
    /// ordered and bounded like the per-card pin stores. A card reborn
    /// from the backend factory replays this registry into its fresh
    /// engine, so restarted cards keep serving pinned operands hash-free
    /// without waiting for the next sighting of each pin.
    pin_registry: Mutex<PinRegistry>,
}

struct QueueState {
    pending: VecDeque<Submitted>,
    closed: bool,
}

/// The pool-shared record of session registrations, replayed into reborn
/// cards (see [`PoolShared::pin_registry`]). Bounded like the per-card pin
/// stores: oldest registrations age out first.
struct PinRegistry {
    capacity: usize,
    entries: Vec<(u64, Arc<UBig>)>,
}

impl PinRegistry {
    fn new(capacity: usize) -> PinRegistry {
        PinRegistry {
            capacity,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, id: u64, operand: Arc<UBig>) {
        if self.capacity == 0 {
            return;
        }
        while self.entries.len() >= self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((id, operand));
    }

    fn remove(&mut self, id: u64) {
        self.entries.retain(|(pin, _)| *pin != id);
    }

    fn snapshot(&self) -> Vec<(u64, Arc<UBig>)> {
        self.entries.clone()
    }
}

impl PoolShared {
    fn close(&self) {
        lock_or_recover(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        // A worker panic mid-flush never holds this lock (flushes run
        // outside it), so poisoning can only come from a panicking
        // submitter — the queue itself is still consistent.
        lock_or_recover(&self.state)
    }

    fn set_health(&self, index: usize, health: CardHealth) {
        self.card_health[index].store(health as u8, Ordering::Relaxed);
    }

    fn health(&self, index: usize) -> CardHealth {
        match self.card_health[index].load(Ordering::Relaxed) {
            0 => CardHealth::Live,
            1 => CardHealth::Restarting,
            _ => CardHealth::Dead,
        }
    }

    fn health_snapshot(&self) -> Vec<CardHealth> {
        (0..self.card_health.len())
            .map(|i| self.health(i))
            .collect()
    }

    /// Whether any **non-dead** card's geometry fits an operand of `bits`
    /// bits (dead cards cannot claim, so they must not keep jobs routed
    /// away from the survivors; a restarting card still counts — it comes
    /// back).
    fn fits_any_live(&self, bits: usize) -> bool {
        self.capacities
            .iter()
            .enumerate()
            .any(|(i, cap)| self.health(i) != CardHealth::Dead && cap.is_none_or(|c| bits <= c))
    }

    /// Puts a job from a failed flush back on the queue for the next
    /// claim — surviving cards (or this one, once restarted) pick it up.
    /// Bypasses the capacity bound (the job was already admitted once;
    /// bouncing it against backpressure could deadlock a full queue) and
    /// the closed flag (during a shutdown drain, retried jobs must still
    /// reach a survivor; if every worker exits first, the exit path
    /// clears the queue and the job resolves [`ServeError::Closed`]).
    fn requeue(&self, job: Submitted) {
        self.lock_state().pending.push_back(job);
        self.not_empty.notify_all();
    }

    /// On speculative pools, digests are paid once per submission — on
    /// the submitter's thread, before any lock — so the speculative
    /// preparer's queue scans are pure map lookups under the mutex.
    /// Pinned operands never hash (that is the point of pinning); their
    /// jobs simply opt out of speculation.
    fn stamp_digests(&self, request: &ProductRequest) -> Option<(u64, u64)> {
        if !self.speculation {
            return None;
        }
        match (&request.a, &request.b) {
            (Operand::Inline(a), Operand::Inline(b)) => Some((digest(a), digest(b))),
            _ => None,
        }
    }

    /// The one enqueue path every submission flavor funnels through:
    /// blocking or shedding, ticket-bound or completion-queue-bound.
    fn enqueue(
        &self,
        blocking: bool,
        request: ProductRequest,
        reply: ReplySink,
        cancelled: Arc<AtomicBool>,
    ) -> Result<(), SubmitError> {
        let digests = self.stamp_digests(&request);
        let required_bits = request.required_bits();
        let capacity = self.config.queue_capacity.max(1);
        let mut state = self.lock_state();
        loop {
            if state.closed {
                return Err(SubmitError::Closed(request));
            }
            if state.pending.len() < capacity {
                break;
            }
            if !blocking {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Full(request));
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        let enqueued = Instant::now();
        state.pending.push_back(Submitted {
            request,
            enqueued,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            digests,
            required_bits,
            cancelled,
            seen: enqueued,
            retries: 0,
            suspect: false,
            reply,
        });
        drop(state);
        self.not_empty.notify_all();
        Ok(())
    }

    /// [`PoolShared::enqueue`] for ticket-bound submissions.
    fn enqueue_ticket(
        &self,
        blocking: bool,
        request: ProductRequest,
    ) -> Result<ProductTicket, SubmitError> {
        let (reply, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        self.enqueue(
            blocking,
            request,
            ReplySink::Ticket(reply),
            Arc::clone(&cancelled),
        )?;
        Ok(ProductTicket { rx, cancelled })
    }

    /// [`PoolShared::enqueue`] for completion-queue-bound submissions.
    fn enqueue_sink(
        &self,
        blocking: bool,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.enqueue(
            blocking,
            request,
            ReplySink::Tagged(sink),
            Arc::new(AtomicBool::new(false)),
        )
    }
}

fn digest(operand: &UBig) -> u64 {
    let mut hasher = DefaultHasher::new();
    operand.hash(&mut hasher);
    hasher.finish()
}

/// The pool-shared staging area for speculatively prepared handles.
///
/// One entry per digest (a digest collision simply skips speculation for
/// the colliding operand — cards verify the stored operand before
/// claiming, so a clash can never serve the wrong spectrum); oldest
/// entries are evicted first.
#[derive(Default)]
struct SpecStore {
    capacity: usize,
    order: VecDeque<u64>,
    entries: HashMap<u64, (UBig, OperandHandle)>,
}

impl SpecStore {
    fn new(capacity: usize) -> SpecStore {
        SpecStore {
            capacity,
            order: VecDeque::new(),
            entries: HashMap::new(),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    fn insert(&mut self, key: u64, operand: UBig, handle: OperandHandle) {
        if self.capacity == 0 || self.entries.contains_key(&key) {
            return;
        }
        while self.entries.len() >= self.capacity {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
        self.entries.insert(key, (operand, handle));
        self.order.push_back(key);
    }

    /// Removes and returns the staged handle for `operand` if it is
    /// present and was prepared by an instance interchangeable with
    /// `provenance`.
    fn take(
        &mut self,
        operand: &UBig,
        provenance: crate::engine::HandleProvenance,
    ) -> Option<OperandHandle> {
        let key = digest(operand);
        let matches = self
            .entries
            .get(&key)
            .is_some_and(|(stored, handle)| stored == operand && handle.provenance() == provenance);
        if !matches {
            return None;
        }
        self.order.retain(|k| *k != key);
        self.entries.remove(&key).map(|(_, handle)| handle)
    }

    fn clear(&mut self) {
        self.order.clear();
        self.entries.clear();
    }
}

/// A resident serving front over **one** card: one worker thread owning an
/// [`EvalEngine`], fed by a bounded queue of [`ProductRequest`]s (see the
/// [module docs](crate::serve) for the full contract). Internally this is
/// a [`ServerPool`] of one.
pub struct ProductServer {
    pool: ServerPool,
}

impl core::fmt::Debug for ProductServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ProductServer")
            .field("open", &self.pool.is_open())
            .finish()
    }
}

impl ProductServer {
    /// Spawns the worker thread; the engine moves in and stays resident
    /// until [`ProductServer::shutdown`] (or drop).
    pub fn spawn<M>(engine: EvalEngine<M>, config: ServeConfig) -> ProductServer
    where
        M: Multiplier + Send + Sync + 'static,
    {
        ProductServer {
            pool: ServerPool::spawn(vec![engine], config),
        }
    }

    /// Submits a job, **blocking** while the bounded queue is full (see
    /// [`Submitter::submit`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (with the request handed back) if the
    /// worker is gone.
    pub fn submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.pool.submit(request)
    }

    /// Submits a job without blocking (see [`Submitter::try_submit`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] if the worker is gone.
    pub fn try_submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.pool.try_submit(request)
    }

    /// A per-client [`ClientSession`] over this server (see
    /// [`ServerPool::session`]).
    pub fn session(&self) -> ClientSession {
        self.pool.session()
    }

    /// Closes the queue, drains every already-accepted job, joins the
    /// worker and returns its lifetime counters. Never panics — a dead
    /// worker's tickets already resolved [`ServeError::Closed`], and its
    /// last published stats snapshot stands in for the final counters.
    pub fn shutdown(self) -> ServeStats {
        self.pool.shutdown().total()
    }

    /// Graceful shutdown with a deadline (see [`ServerPool::drain`]):
    /// stops intake, finishes the accepted jobs for up to `timeout`,
    /// joins the worker, and reports whether the drain beat the clock.
    pub fn drain(self, timeout: Duration) -> DrainOutcome {
        self.pool.drain(timeout)
    }
}

impl Submitter for ProductServer {
    fn submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        ProductServer::submit(self, request)
    }

    fn try_submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        ProductServer::try_submit(self, request)
    }

    fn submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.pool.submit_into(request, sink)
    }

    fn try_submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.pool.try_submit_into(request, sink)
    }
}

/// The engine builder a supervised pool rebuilds panicked cards from
/// (see [`ServerPool::with_backend_factory`]).
type CardFactory<M> = Arc<dyn Fn(usize) -> EvalEngine<M> + Send + Sync>;

/// A serving **fleet**: several resident [`EvalEngine`]s — one per
/// simulated accelerator card — pulling deadline-aware micro-batches from
/// one shared bounded queue (see the [module docs](crate::serve) for the
/// full contract).
///
/// Every card keeps its own prepared-handle cache (handles are
/// provenance-stamped per backend instance), runs its flushes
/// independently, and reports its own [`ServeStats`]; the queue, the
/// backpressure bound, and the optional speculative preparer are shared.
pub struct ServerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<ServeStats>>,
    speculator: Option<JoinHandle<()>>,
}

impl core::fmt::Debug for ServerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerPool")
            .field("workers", &self.workers.len())
            .field("open", &self.is_open())
            .field("speculative", &self.shared.speculation)
            .finish()
    }
}

impl ServerPool {
    /// Spawns one worker thread per engine; the engines move in and stay
    /// resident until [`ServerPool::shutdown`] (or drop). Cards may be
    /// heterogeneous (different transform geometries, even on the same
    /// host) — each prepares its own operands, so jobs never depend on
    /// cross-card handle compatibility.
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn spawn<M>(engines: Vec<EvalEngine<M>>, config: ServeConfig) -> ServerPool
    where
        M: Multiplier + Send + Sync + 'static,
    {
        ServerPool::spawn_inner(engines, None, None, config)
    }

    /// Spawns a **supervised** fleet of `cards` workers whose engines come
    /// from `factory` (called once per card index up front) — and again
    /// whenever a card's flush panics: the worker catches the unwind,
    /// re-queues the flush's jobs to the surviving cards, rebuilds its
    /// engine from the factory under exponential backoff (bounded by
    /// [`ServeConfig::restart_cap`] consecutive attempts), replays the
    /// session pin registry into the fresh engine, and resumes claiming.
    /// [`PoolStats::health`] exposes each card's supervision state. On an
    /// *unsupervised* pool ([`ServerPool::spawn`]) a panicking card is
    /// simply lost for good.
    ///
    /// ```
    /// use he_accel::prelude::*;
    ///
    /// let pool = ServerPool::with_backend_factory(
    ///     2,
    ///     |_card| EvalEngine::new(SsaSoftware::for_operand_bits(256).expect("fits")),
    ///     ServeConfig::default(),
    /// );
    /// let ticket = pool.submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))?;
    /// assert_eq!(ticket.wait().expect("served"), UBig::from(42u64));
    /// let stats = pool.shutdown();
    /// assert_eq!(stats.health, vec![CardHealth::Live; 2]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cards` is zero, or if the factory panics while building
    /// the initial engines.
    pub fn with_backend_factory<M, F>(cards: usize, factory: F, config: ServeConfig) -> ServerPool
    where
        M: Multiplier + Send + Sync + 'static,
        F: Fn(usize) -> EvalEngine<M> + Send + Sync + 'static,
    {
        assert!(cards > 0, "a serving fleet needs at least one card");
        let factory: CardFactory<M> = Arc::new(factory);
        let engines = (0..cards).map(|index| factory(index)).collect();
        ServerPool::spawn_inner(engines, None, Some(factory), config)
    }

    /// Like [`ServerPool::spawn`], with one extra engine dedicated to
    /// **speculative both-cached promotion**: a background task that
    /// watches the fleet's digest-LRU hit statistics and pre-transforms
    /// the fresh partners of hot recurring operands while they wait in
    /// the queue, off the cards' critical path. Cards claim the staged
    /// spectra at flush time ([`ServeStats::speculative_hits`]); spectra
    /// are only interchangeable between instances of identical transform
    /// geometry, so the speculator engine should match the cards it feeds
    /// (a mismatched geometry is safe but useless — its handles are never
    /// claimed).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is empty.
    pub fn spawn_speculative<M>(
        engines: Vec<EvalEngine<M>>,
        speculator: EvalEngine<M>,
        config: ServeConfig,
    ) -> ServerPool
    where
        M: Multiplier + Send + Sync + 'static,
    {
        ServerPool::spawn_inner(engines, Some(speculator), None, config)
    }

    fn spawn_inner<M>(
        engines: Vec<EvalEngine<M>>,
        speculator: Option<EvalEngine<M>>,
        factory: Option<CardFactory<M>>,
        config: ServeConfig,
    ) -> ServerPool
    where
        M: Multiplier + Send + Sync + 'static,
    {
        assert!(
            !engines.is_empty(),
            "a serving fleet needs at least one card"
        );
        let capacities: Vec<Option<usize>> = engines
            .iter()
            .map(EvalEngine::operand_capacity_bits)
            .collect();
        let card_health = (0..engines.len())
            .map(|_| AtomicU8::new(CardHealth::Live as u8))
            .collect();
        let shared = Arc::new(PoolShared {
            config,
            capacities,
            card_health,
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            seq: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(engines.len()),
            trimmed_cards: AtomicUsize::new(0),
            live: (0..engines.len())
                .map(|_| Mutex::new(ServeStats::default()))
                .collect(),
            speculation: speculator.is_some(),
            hot: Mutex::new(HashMap::new()),
            spec_store: Mutex::new(SpecStore::new(config.speculate_store_capacity)),
            spec_prepares: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            pin_seq: AtomicU64::new(0),
            pin_registry: Mutex::new(PinRegistry::new(config.cache_capacity)),
        });
        let workers = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| {
                let shared = Arc::clone(&shared);
                let factory = factory.clone();
                std::thread::Builder::new()
                    .name(format!("he-serve-card-{index}"))
                    .spawn(move || CardWorker::new(index, engine, shared, factory).run())
                    .expect("spawn serving-card worker")
            })
            .collect();
        let speculator = speculator.map(|engine| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("he-serve-speculator".into())
                .spawn(move || run_speculator(engine, shared))
                .expect("spawn speculative preparer")
        });
        ServerPool {
            shared,
            workers,
            speculator,
        }
    }

    /// Number of cards serving this pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    fn is_open(&self) -> bool {
        !self.shared.lock_state().closed
    }

    /// A per-client session over this pool: register recurring operands
    /// once, then stream products against them (see [`ClientSession`]).
    pub fn session(&self) -> ClientSession {
        ClientSession {
            shared: Arc::clone(&self.shared),
            names: HashMap::new(),
        }
    }

    /// A live snapshot of the fleet's counters (refreshed at every flush
    /// boundary), without stopping anything.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            per_worker: self
                .shared
                .live
                .iter()
                .map(|slot| *lock_or_recover(slot))
                .collect(),
            speculative_prepares: self.shared.spec_prepares.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            health: self.shared.health_snapshot(),
        }
    }

    /// Joins every worker, recovering stats even from a card whose
    /// *thread* died (a panic outside the supervised flush path): the
    /// card's last published live-slot snapshot stands in for the final
    /// counters a clean exit would have returned. A dead worker must not
    /// panic the caller mid-drain.
    fn join_workers(&mut self) -> Vec<ServeStats> {
        let per_worker = self
            .workers
            .drain(..)
            .enumerate()
            .map(|(index, w)| {
                w.join().unwrap_or_else(|_| {
                    self.shared
                        .live
                        .get(index)
                        .map(|slot| *lock_or_recover(slot))
                        .unwrap_or_default()
                })
            })
            .collect();
        if let Some(speculator) = self.speculator.take() {
            let _ = speculator.join();
        }
        per_worker
    }

    /// Closes the queue, drains every already-accepted job, joins every
    /// card and returns the fleet's lifetime counters. Never panics: a
    /// card whose worker thread died is reported through
    /// [`PoolStats::health`] (its tickets resolved
    /// [`ServeError::Closed`] when it went down), and its last published
    /// stats snapshot stands in for the final counters.
    pub fn shutdown(mut self) -> PoolStats {
        // Health reflects the serving-time state: snapshot before the
        // workers exit (every exit marks its card `Dead`).
        let health = self.shared.health_snapshot();
        self.shared.close();
        let per_worker = self.join_workers();
        // Jobs accepted after the cards drained and exited (a losing race
        // with shutdown) answer `Closed` through their dropped senders.
        self.shared.lock_state().pending.clear();
        PoolStats {
            per_worker,
            speculative_prepares: self.shared.spec_prepares.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            health,
        }
    }

    /// Graceful shutdown with a deadline: stops intake immediately, lets
    /// the fleet finish every already-accepted job for up to `timeout`,
    /// then joins the workers and reports whether the drain beat the
    /// clock.
    ///
    /// If the timeout expires first, the jobs still queued are dropped
    /// (their tickets and sinks resolve [`ServeError::Closed`]) and
    /// [`DrainOutcome::clean`] is `false`; in-flight flushes still run to
    /// completion — a running multiply cannot be preempted — so the call
    /// may return somewhat after the deadline, but never hangs on queued
    /// work.
    ///
    /// ```
    /// use he_accel::prelude::*;
    /// use std::time::Duration;
    ///
    /// let pool = ServerPool::spawn(
    ///     vec![EvalEngine::new(SsaSoftware::for_operand_bits(256)?)],
    ///     ServeConfig { max_delay: Duration::from_secs(10), ..ServeConfig::default() },
    /// );
    /// let ticket = pool.submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))?;
    /// // Intake stops, the queued job still completes (the long batch
    /// // window does not stall the drain), and the fleet joins.
    /// let outcome = pool.drain(Duration::from_secs(30));
    /// assert!(outcome.clean);
    /// assert_eq!(outcome.stats.total().completed, 1);
    /// assert_eq!(ticket.wait().expect("drained, not dropped"), UBig::from(42u64));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn drain(mut self, timeout: Duration) -> DrainOutcome {
        let health = self.shared.health_snapshot();
        self.shared.close();
        let deadline = Instant::now() + timeout;
        // Workers self-exit once the closed queue is drained, so "queue
        // empty and everyone gone" is the drain-complete signal.
        let mut clean = true;
        while self.shared.workers_alive.load(Ordering::Acquire) > 0 {
            if Instant::now() >= deadline {
                clean = false;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if !clean {
            // Give up on the still-queued jobs so the join below waits
            // only for in-flight flushes, not the whole backlog; dropped
            // reply sinks resolve their callers to `Closed`.
            self.shared.lock_state().pending.clear();
        }
        let per_worker = self.join_workers();
        self.shared.lock_state().pending.clear();
        DrainOutcome {
            stats: PoolStats {
                per_worker,
                speculative_prepares: self.shared.spec_prepares.load(Ordering::Relaxed),
                shed: self.shared.shed.load(Ordering::Relaxed),
                health,
            },
            clean,
        }
    }
}

/// What [`ServerPool::drain`] / [`ProductServer::drain`] came back with:
/// the fleet's final counters, and whether every accepted job finished
/// inside the timeout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainOutcome {
    /// The fleet's lifetime counters (same shape as
    /// [`ServerPool::shutdown`]'s).
    pub stats: PoolStats,
    /// `true` when every accepted job was answered before the timeout;
    /// `false` when the deadline expired with jobs still queued (those
    /// resolved [`ServeError::Closed`]).
    pub clean: bool,
}

impl Drop for ServerPool {
    fn drop(&mut self) {
        self.shared.close();
        for worker in self.workers.drain(..) {
            // Drain-and-join; a worker panic surfaces through tickets as
            // `Closed`, not through drop.
            let _ = worker.join();
        }
        if let Some(speculator) = self.speculator.take() {
            let _ = speculator.join();
        }
        self.shared.lock_state().pending.clear();
    }
}

impl Submitter for ServerPool {
    fn submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.shared.enqueue_ticket(true, request)
    }

    fn try_submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.shared.enqueue_ticket(false, request)
    }

    fn submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.shared.enqueue_sink(true, request, sink)
    }

    fn try_submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.shared.enqueue_sink(false, request, sink)
    }
}

/// A per-client handle over a serving fleet: register a recurring
/// operand **once**, then stream products against it by name.
///
/// Registration pins the operand in every card's cache by id: no digest
/// is ever computed for it (at paper scale that is hashing ~100 KB per
/// submission), the pinned handle sits outside the digest cache's LRU
/// (each card keeps up to `cache_capacity` pins of its own,
/// least-recently-used evicted first, so register churn stays bounded),
/// and a stream submitted with [`ClientSession::submit_with`] rides the
/// cached-transform rungs from its first flush —
/// [`ServeStats::pinned_hits`] counts exactly these hash-free
/// resolutions. Products of two registered operands
/// ([`ClientSession::submit_between`]) run both-cached with zero hashing
/// on either side.
///
/// Sessions are cheap, `Clone + Send`, and independent per client:
/// cloning carries the registrations made so far, and registrations are
/// client-local names (two sessions may both call something `"mask"`).
/// A session outlives its pool gracefully — submissions after shutdown
/// return [`SubmitError::Closed`]. Being a [`Submitter`], a session also
/// feeds a [`CompletionQueue`] or a [`ServedMultiplier`] directly.
///
/// ```
/// use he_accel::prelude::*;
///
/// let server = ProductServer::spawn(
///     EvalEngine::new(SsaSoftware::for_operand_bits(256)?),
///     ServeConfig::default(),
/// );
/// let mut session = server.session();
/// // The recurring accumulator is registered once…
/// session.register("acc", UBig::from(1_000_003u64));
/// // …and a stream of fresh operands runs against it by name.
/// let tickets: Vec<ProductTicket> = (2..6u64)
///     .map(|k| session.submit_with("acc", UBig::from(k)))
///     .collect::<Result<_, _>>()?;
/// for (k, ticket) in (2..6u64).zip(tickets) {
///     assert_eq!(ticket.wait().expect("served"), UBig::from(k * 1_000_003));
/// }
/// let stats = server.shutdown();
/// // The pinned operand resolved without hashing on every product.
/// assert!(stats.pinned_hits >= 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct ClientSession {
    shared: Arc<PoolShared>,
    /// Client-local name → (pin id, the registered operand).
    names: HashMap<String, (u64, Arc<UBig>)>,
}

impl core::fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ClientSession")
            .field("registered", &self.names.len())
            .finish()
    }
}

impl ClientSession {
    /// Registers a recurring operand under a client-local name. Every
    /// card pins its prepared handle by id (prepared lazily at the
    /// operand's first flush, re-prepared after an idle trim), outside
    /// the digest cache and never digest-hashed; each card retains at
    /// most `cache_capacity` pins (least-recently-used evicted first),
    /// re-preparing an evicted live pin at its next use. Re-registering
    /// a name replaces the operand (the old pin ages out of every
    /// card's store).
    pub fn register(&mut self, name: impl Into<String>, operand: UBig) {
        let id = self.shared.pin_seq.fetch_add(1, Ordering::Relaxed);
        let operand = Arc::new(operand);
        let mut registry = lock_or_recover(&self.shared.pin_registry);
        // The registry backs pin *replay* on restarted cards; a replaced
        // registration must not be replayed forever.
        if let Some((old_id, _)) = self.names.insert(name.into(), (id, Arc::clone(&operand))) {
            registry.remove(old_id);
        }
        registry.insert(id, operand);
    }

    /// Releases a registration. Cards drop the pinned handle at their
    /// next idle trim; in-flight jobs referencing it still complete.
    pub fn unregister(&mut self, name: &str) {
        if let Some((id, _)) = self.names.remove(name) {
            lock_or_recover(&self.shared.pin_registry).remove(id);
        }
    }

    /// Names currently registered on this session.
    pub fn registered(&self) -> usize {
        self.names.len()
    }

    fn pinned(&self, name: &str) -> Operand {
        let (id, value) = self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("operand {name:?} is not registered on this session"));
        Operand::Pinned {
            id: *id,
            value: Arc::clone(value),
        }
    }

    /// A request multiplying the registered operand `name` by a fresh
    /// operand — submit it yourself (deadline attached, through a
    /// [`CompletionQueue`], …) or use [`ClientSession::submit_with`].
    ///
    /// # Panics
    ///
    /// Panics if `name` was never registered on this session.
    pub fn request_with(&self, name: &str, fresh: UBig) -> ProductRequest {
        ProductRequest {
            a: self.pinned(name),
            b: Operand::Inline(fresh),
            deadline: None,
        }
    }

    /// A request multiplying two registered operands — the both-pinned
    /// product: no hashing, no LRU traffic, both spectra resident.
    ///
    /// # Panics
    ///
    /// Panics if either name was never registered on this session.
    pub fn request_between(&self, a: &str, b: &str) -> ProductRequest {
        ProductRequest {
            a: self.pinned(a),
            b: self.pinned(b),
            deadline: None,
        }
    }

    /// Submits registered-operand × fresh, blocking while the queue is
    /// full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if every worker is gone.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never registered on this session.
    pub fn submit_with(&self, name: &str, fresh: UBig) -> Result<ProductTicket, SubmitError> {
        self.shared
            .enqueue_ticket(true, self.request_with(name, fresh))
    }

    /// Submits the product of two registered operands, blocking while
    /// the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if every worker is gone.
    ///
    /// # Panics
    ///
    /// Panics if either name was never registered on this session.
    pub fn submit_between(&self, a: &str, b: &str) -> Result<ProductTicket, SubmitError> {
        self.shared.enqueue_ticket(true, self.request_between(a, b))
    }

    /// [`Submitter::submit_into`] with a withdrawal handle: the job's
    /// completion still travels through `sink`, but the returned
    /// [`CancelHandle`] can ask the fleet to drop the job before a card
    /// claims it — the hook a remote front end needs to honor an
    /// out-of-band cancel message for sink-bound jobs (a ticket's cancel
    /// flag is unreachable from a [`CompletionSink`] submission). A job
    /// cancelled in the queue resolves its sink to
    /// [`ServeError::Closed`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] (with the request handed back; the sink
    /// resolves [`ServeError::Closed`]) if every worker is gone.
    pub fn submit_into_cancellable(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<CancelHandle, SubmitError> {
        let cancelled = Arc::new(AtomicBool::new(false));
        self.shared.enqueue(
            true,
            request,
            ReplySink::Tagged(sink),
            Arc::clone(&cancelled),
        )?;
        Ok(CancelHandle { cancelled })
    }
}

impl Submitter for ClientSession {
    fn submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.shared.enqueue_ticket(true, request)
    }

    fn try_submit(&self, request: ProductRequest) -> Result<ProductTicket, SubmitError> {
        self.shared.enqueue_ticket(false, request)
    }

    fn submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.shared.enqueue_sink(true, request, sink)
    }

    fn try_submit_into(
        &self,
        request: ProductRequest,
        sink: CompletionSink,
    ) -> Result<(), SubmitError> {
        self.shared.enqueue_sink(false, request, sink)
    }
}

/// What a card found when it went back to the queue.
enum Claim {
    Batch(Vec<Submitted>),
    IdleTrim,
    Closed,
}

/// One card of the fleet: an engine, its private handle cache, and its
/// counters.
struct CardWorker<M> {
    index: usize,
    engine: EvalEngine<M>,
    shared: Arc<PoolShared>,
    cache: HandleCache,
    /// Handles of session-registered operands, keyed by pin id: resolved
    /// without hashing, exempt from the digest cache's LRU pressure,
    /// rebuilt lazily after an idle trim. Bounded on its own terms (at
    /// most `cache_capacity` pins, least-recently-used evicted first) so
    /// register-churn — sessions re-registering names, clients coming
    /// and going without `unregister` — cannot grow a card's resident
    /// spectra without limit; an evicted live pin is simply re-prepared
    /// at its next flush.
    pinned: HashMap<u64, PinnedSlot>,
    pin_tick: u64,
    /// This card's transform capacity in bits (`None` = unbounded) — its
    /// side of the [`RoutePolicy::BySize`] eligibility check.
    capacity: Option<usize>,
    stats: ServeStats,
    /// Whether this card already trimmed during the current idle period
    /// (one trim per quiet stretch, then park until traffic returns).
    trimmed: bool,
    /// The engine rebuilder on a supervised pool
    /// ([`ServerPool::with_backend_factory`]); `None` = a panicking flush
    /// kills this card for good.
    factory: Option<CardFactory<M>>,
    /// Restart attempts since the last clean flush; bounded by
    /// [`ServeConfig::restart_cap`].
    consecutive_restarts: u32,
}

/// Runs when a card exits, however it exits. Marks the card
/// [`CardHealth::Dead`] (and wakes the fleet, so [`RoutePolicy::BySize`]
/// survivors re-evaluate and claim the jobs only the dead card used to
/// fit); the **last** card to go additionally closes the queue — a fleet whose every worker
/// panicked must refuse submissions instead of blocking them forever —
/// and drops the jobs nobody is left to run, so their tickets and
/// completion sinks resolve to [`ServeError::Closed`] instead of
/// hanging until the pool handle is torn down.
struct AliveGuard<'a> {
    shared: &'a PoolShared,
    index: usize,
}

// lint: supervisor
// (From here to the end of the speculator, the code runs on worker
// threads that hold client reply sinks: a panic is a hung client. The
// he-lint gate keeps these paths free of unwrap/expect/panic/indexing.)
impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        self.shared.set_health(self.index, CardHealth::Dead);
        if self.shared.workers_alive.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.close();
            // `close` set the flag, so nothing can be pushed after this
            // clear: every orphaned job's reply sink drops here, which
            // is what resolves its caller.
            self.shared.lock_state().pending.clear();
        } else {
            // Wake parked survivors: jobs this card alone fitted are now
            // claimable by everyone.
            self.shared.not_empty.notify_all();
        }
    }
}

/// One pinned prepared handle and its recency (for the pin store's own
/// LRU bound).
struct PinnedSlot {
    handle: OperandHandle,
    last_used: u64,
}

impl<M: Multiplier + Sync> CardWorker<M> {
    fn new(
        index: usize,
        engine: EvalEngine<M>,
        shared: Arc<PoolShared>,
        factory: Option<CardFactory<M>>,
    ) -> CardWorker<M> {
        let cache = HandleCache::new(shared.config.cache_capacity);
        // lint: allow(panic-path) -- constructor; `index` comes from the pool's own enumerate()
        let capacity = shared.capacities[index];
        CardWorker {
            index,
            engine,
            shared,
            cache,
            pinned: HashMap::new(),
            pin_tick: 0,
            capacity,
            stats: ServeStats::default(),
            trimmed: false,
            factory,
            consecutive_restarts: 0,
        }
    }

    /// Retains a freshly prepared pinned handle, evicting the
    /// least-recently-used pin beyond the store's bound (the digest
    /// cache's capacity knob doubles as the pin bound — both hold the
    /// same kind of multi-hundred-KB spectra).
    fn pin(&mut self, id: u64, handle: OperandHandle) {
        let cap = self.shared.config.cache_capacity.max(1);
        while self.pinned.len() >= cap {
            let Some((&oldest, _)) = self.pinned.iter().min_by_key(|(_, slot)| slot.last_used)
            else {
                break;
            };
            self.pinned.remove(&oldest);
        }
        self.pin_tick += 1;
        self.pinned.insert(
            id,
            PinnedSlot {
                handle,
                last_used: self.pin_tick,
            },
        );
    }

    /// Whether this card may claim `job` under the pool's
    /// [`RoutePolicy`].
    fn eligible(&self, job: &Submitted) -> bool {
        match self.shared.config.route {
            RoutePolicy::Shared => true,
            RoutePolicy::BySize => match self.capacity {
                None => true,
                // A job no live card fits stays claimable by everyone:
                // it fails fast with the backend's typed error instead
                // of waiting on a card that does not exist (or died).
                Some(cap) => {
                    job.required_bits <= cap || !self.shared.fits_any_live(job.required_bits)
                }
            },
        }
    }

    /// Queue positions of the jobs this card may claim (all of them
    /// under [`RoutePolicy::Shared`]).
    fn eligible_indices(&self, pending: &VecDeque<Submitted>) -> Vec<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, job)| self.eligible(job))
            .map(|(i, _)| i)
            .collect()
    }

    fn run(mut self) -> ServeStats {
        let shared = Arc::clone(&self.shared);
        let _guard = AliveGuard {
            shared: &shared,
            index: self.index,
        };
        loop {
            match self.claim() {
                Claim::Batch(batch) => {
                    if self.trimmed {
                        self.trimmed = false;
                        self.shared.trimmed_cards.fetch_sub(1, Ordering::AcqRel);
                    }
                    let survived = self.flush(batch);
                    self.publish();
                    if survived {
                        self.consecutive_restarts = 0;
                    } else if !self.recover() {
                        // Unsupervised, or the restart budget is spent:
                        // this card is done; AliveGuard marks it Dead and
                        // the survivors carry the fleet.
                        break;
                    }
                }
                Claim::IdleTrim => {
                    // Release what residency costs when traffic is quiet:
                    // this card's scratch units and cached spectra (both
                    // multi-MB at paper scale); the next burst re-prepares
                    // what it reuses.
                    self.engine.backend().trim_resources();
                    self.cache.clear();
                    // Pinned handles drop with the rest (and with them
                    // any pins a session has since unregistered); the
                    // next flush that references a live pin re-prepares
                    // it from the job in hand (requests carry the
                    // registered operand).
                    self.pinned.clear();
                    self.stats.idle_trims += 1;
                    self.trimmed = true;
                    let idle_now = self.shared.trimmed_cards.fetch_add(1, Ordering::AcqRel) + 1;
                    // The *shared* speculative state empties only once the
                    // whole fleet has gone quiet: hot statistics from a
                    // past burst must not steer speculation for the next,
                    // but one starved card timing out while its siblings
                    // chew through a long burst is not fleet idleness —
                    // wiping the staged spectra then would defeat
                    // speculation exactly under sustained load.
                    if self.shared.speculation && idle_now == self.shared.live.len() {
                        lock_or_recover(&self.shared.hot).clear();
                        lock_or_recover(&self.shared.spec_store).clear();
                    }
                    self.publish();
                }
                Claim::Closed => break,
            }
        }
        self.stats
    }

    /// Refreshes this card's live stats slot (for [`ServerPool::stats`]).
    fn publish(&self) {
        if let Some(slot) = self.shared.live.get(self.index) {
            *lock_or_recover(slot) = self.stats;
        }
    }

    /// Blocks until there is a micro-batch **this card may run** (under
    /// [`RoutePolicy::BySize`] only jobs that fit its geometry), the
    /// card should trim, or the fleet is shut down.
    fn claim(&self) -> Claim {
        let config = &self.shared.config;
        let max_batch = config.max_batch.max(1);
        let mut state = self.shared.lock_state();
        loop {
            // Jobs pending for *other* cards are none of this card's
            // business: an empty eligible set idles (and eventually
            // trims) this card even while its siblings are loaded.
            let eligible = self.eligible_indices(&state.pending);
            if eligible.is_empty() {
                if state.closed {
                    return Claim::Closed;
                }
                if self.trimmed {
                    // Already trimmed this idle period: park until
                    // traffic (or shutdown) wakes the fleet.
                    state = self
                        .shared
                        .not_empty
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                } else {
                    let (next, timeout) = self
                        .shared
                        .not_empty
                        .wait_timeout(state, config.idle_trim_after)
                        .unwrap_or_else(|e| e.into_inner());
                    state = next;
                    if timeout.timed_out()
                        && !state.closed
                        && self.eligible_indices(&state.pending).is_empty()
                    {
                        return Claim::IdleTrim;
                    }
                }
                continue;
            }
            // A suspect job (it rode a panicked flush) is claimed ALONE
            // and immediately: if it is poisonous it takes down only this
            // flush, and if it is an innocent batch-mate it completes
            // without waiting out another batch window it already paid.
            let suspect_pos = eligible
                .iter()
                .copied()
                .find(|&i| state.pending.get(i).is_some_and(|job| job.suspect));
            if let Some(pos) = suspect_pos {
                if let Some(mut job) = state.pending.remove(pos) {
                    job.seen = Instant::now();
                    drop(state);
                    self.shared.not_full.notify_all();
                    return Claim::Batch(vec![job]);
                }
                continue;
            }
            let now = Instant::now();
            let due = flush_due(&state.pending, &eligible, config);
            if state.closed || eligible.len() >= max_batch || now >= due {
                let batch = pop_batch(&mut state.pending, &eligible, config);
                drop(state);
                // Capacity was freed; unblock waiting submitters.
                self.shared.not_full.notify_all();
                return Claim::Batch(batch);
            }
            // The batch is still filling: wait out the window, waking on
            // every push to re-evaluate (a new job may complete the batch
            // or pull the window earlier with its deadline).
            let (next, _) = self
                .shared
                .not_empty
                .wait_timeout(state, due - now)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
        }
    }

    /// Runs one claimed micro-batch end to end, with every engine call
    /// supervised by `catch_unwind`. Returns `false` when the backend
    /// panicked — the jobs that were in flight have been re-queued (or
    /// quarantined: [`ServeError::Poisoned`]) and the caller must restart
    /// or retire this card.
    fn flush(&mut self, batch: Vec<Submitted>) -> bool {
        if batch.is_empty() {
            return true;
        }
        self.stats.flushes += 1;
        self.stats.largest_flush = self.stats.largest_flush.max(batch.len());
        // Replies are buffered and sent only after this card's stats are
        // published: a caller that just saw its ticket answered must find
        // the completion already reflected in `ServerPool::stats`.
        let mut replies: Vec<Reply> = Vec::with_capacity(batch.len());
        // Cancelled jobs are dropped at claim time — no work, no reply
        // (the ticket was consumed by `cancel`; its sink drop is inert).
        // Then expire jobs whose deadline had already passed when this
        // card dequeued them — they were hopeless before any flush could
        // act, and the miss belongs to queueing, not to this flush. A
        // deadline still ahead at dequeue is honored below: the claim
        // loop pulled this flush to start before it, so the decision is
        // the ordering of two recorded events, not a race against the
        // worker's wakeup latency.
        let mut live: Vec<Submitted> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.cancelled.load(Ordering::Relaxed) {
                self.stats.cancelled += 1;
                continue;
            }
            match job.request.deadline {
                Some(deadline) if deadline < job.seen => {
                    self.stats.expired_in_queue += 1;
                    replies.push((
                        job.reply,
                        Err(ServeError::Expired {
                            missed_by: job.seen.saturating_duration_since(deadline),
                        }),
                    ));
                }
                _ => live.push(job),
            }
        }
        let mut survived = true;
        if !live.is_empty() {
            // Phase 1 (cache writes): make sure every operand has a
            // prepared handle, paying each digest's forward transform at
            // most once — and paying independent misses concurrently. An
            // operand the backend cannot prepare simply stays uncached —
            // the job then runs raw and surfaces the backend's own error.
            // A *panicking* preparation (a poisonous operand, a dying
            // card) is caught: the worker thread survives and the jobs go
            // back to the queue.
            let prepared = catch_unwind(AssertUnwindSafe(|| self.prepare_operands(&live)));
            if prepared.is_err() {
                survived = false;
                for job in live {
                    self.requeue_or_quarantine(job, &mut replies);
                }
                live = Vec::new();
            }
            // A job that was live at dequeue but whose deadline passed
            // while this flush prepared its operands has been overtaken
            // by compute, not by queueing: it cannot start in time, so it
            // is dropped here and attributed to the flush.
            let now = Instant::now();
            let mut run: Vec<Submitted> = Vec::with_capacity(live.len());
            for job in live {
                match job.request.deadline {
                    Some(deadline) if deadline < now => {
                        self.stats.expired_in_flush += 1;
                        replies.push((
                            job.reply,
                            Err(ServeError::Expired {
                                missed_by: now.saturating_duration_since(deadline),
                            }),
                        ));
                    }
                    _ => run.push(job),
                }
            }
            if !run.is_empty() {
                survived = self.execute(run, &mut replies);
            }
        }
        if survived {
            // Evict only after the batch ran: every handle it borrowed
            // was live, so the cache may transiently exceed its capacity
            // within a single flush.
            self.cache.evict_to_capacity();
        } else {
            // An unwind tore through the backend mid-operation: every
            // handle it minted is suspect, so the reborn (or retired)
            // card starts clean. Pins are replayed from the session
            // registry on restart.
            self.cache.clear();
            self.pinned.clear();
        }
        self.finish_flush(replies);
        survived
    }

    /// Phase 2 of a flush: assemble the batch on the cached handles —
    /// digest-keyed for inline operands, id-keyed for pinned ones — and
    /// run it as one unit, with panic containment and per-job error
    /// isolation. Returns `false` when the engine panicked (the
    /// unanswered jobs have been re-queued or quarantined).
    fn execute(&mut self, run: Vec<Submitted>, replies: &mut Vec<Reply>) -> bool {
        let cache = &self.cache;
        let pinned = &self.pinned;
        let engine = &self.engine;
        let lookup = |operand: &Operand| -> Option<&OperandHandle> {
            match operand {
                Operand::Inline(value) => cache.get(value),
                Operand::Pinned { id, .. } => pinned.get(id).map(|slot| &slot.handle),
            }
        };
        let jobs: Vec<ProductJob<'_>> = run
            .iter()
            .map(|job| {
                let (a, b) = (&job.request.a, &job.request.b);
                match (lookup(a), lookup(b)) {
                    (Some(ha), Some(hb)) => ProductJob::Prepared(ha, hb),
                    (Some(ha), None) => ProductJob::OnePrepared(ha, b.value()),
                    // Multiplication commutes, so a lone cached `b`
                    // still saves its forward transform.
                    (None, Some(hb)) => ProductJob::OnePrepared(hb, a.value()),
                    (None, None) => ProductJob::Raw(a.value(), b.value()),
                }
            })
            .collect();
        // Per-job outcome; `None` = the job was in flight when the card
        // died (requeue it), `Some` = the backend answered (deliver it).
        let mut reruns = 0u64;
        let outcomes: Vec<Option<Result<UBig, MultiplyError>>> =
            match catch_unwind(AssertUnwindSafe(|| engine.run(&jobs))) {
                Ok(Ok(products)) => products.into_iter().map(|p| Some(Ok(p))).collect(),
                // A single-job batch's error is already exact.
                Ok(Err(err)) if jobs.len() == 1 => vec![Some(Err(err))],
                // A batch reports only its lowest-index error; rerun each
                // job alone so one oversized product does not fail its
                // batch-mates.
                Ok(Err(_)) => {
                    let mut solo: Vec<Option<Result<UBig, MultiplyError>>> =
                        Vec::with_capacity(jobs.len());
                    let mut died = false;
                    for job in &jobs {
                        // Once the card dies mid-rerun, the rest of the
                        // batch goes straight back to the queue.
                        if died {
                            solo.push(None);
                            continue;
                        }
                        reruns += 1;
                        match catch_unwind(AssertUnwindSafe(|| {
                            engine.run(std::slice::from_ref(job))
                        })) {
                            Ok(Ok(mut v)) => match v.pop() {
                                Some(product) => solo.push(Some(Ok(product))),
                                // An engine returning an empty batch for a
                                // one-job run is a device fault, not a
                                // reason to panic the supervisor.
                                None => solo.push(Some(Err(MultiplyError::Device(
                                    "engine returned an empty batch".into(),
                                )))),
                            },
                            Ok(Err(e)) => solo.push(Some(Err(e))),
                            Err(_) => {
                                died = true;
                                solo.push(None);
                            }
                        }
                    }
                    solo
                }
                Err(_) => run.iter().map(|_| None).collect(),
            };
        drop(jobs);
        self.stats.reruns += reruns;
        let mut survived = true;
        for (job, outcome) in run.into_iter().zip(outcomes) {
            match outcome {
                Some(Ok(product)) => {
                    self.stats.completed += 1;
                    replies.push((job.reply, Ok(product)));
                }
                Some(Err(err)) => self.fail_or_retry(job, err, replies),
                None => {
                    survived = false;
                    self.requeue_or_quarantine(job, replies);
                }
            }
        }
        survived
    }

    /// Delivers a backend error — or, for a *transient* device fault
    /// ([`MultiplyError::Device`]) with retry budget and deadline left,
    /// re-queues the job so another card (or this one, recovered) can
    /// try again. Deterministic errors (capacity, parameters) are never
    /// retried: they would fail identically everywhere.
    fn fail_or_retry(&mut self, mut job: Submitted, err: MultiplyError, replies: &mut Vec<Reply>) {
        let transient = matches!(err, MultiplyError::Device(_));
        if !transient || job.retries >= self.shared.config.retry_limit {
            self.stats.failed += 1;
            replies.push((job.reply, Err(ServeError::Multiply(err))));
            return;
        }
        let now = Instant::now();
        if let Some(deadline) = job.request.deadline {
            if deadline < now {
                self.stats.expired_in_flush += 1;
                replies.push((
                    job.reply,
                    Err(ServeError::Expired {
                        missed_by: now.saturating_duration_since(deadline),
                    }),
                ));
                return;
            }
        }
        job.retries += 1;
        self.stats.retried += 1;
        self.shared.requeue(job);
    }

    /// A job whose flush panicked: back to the queue as a *suspect* (it
    /// will be claimed alone, so a poisonous job cannot take batch-mates
    /// down twice) — or, once it has taken down `retry_limit + 1`
    /// flushes, quarantined with [`ServeError::Poisoned`] so it stops
    /// killing cards.
    fn requeue_or_quarantine(&mut self, mut job: Submitted, replies: &mut Vec<Reply>) {
        if job.cancelled.load(Ordering::Relaxed) {
            self.stats.cancelled += 1;
            return;
        }
        if job.retries >= self.shared.config.retry_limit {
            self.stats.poisoned += 1;
            replies.push((
                job.reply,
                Err(ServeError::Poisoned {
                    attempts: job.retries + 1,
                }),
            ));
            return;
        }
        let now = Instant::now();
        if let Some(deadline) = job.request.deadline {
            if deadline < now {
                self.stats.expired_in_flush += 1;
                replies.push((
                    job.reply,
                    Err(ServeError::Expired {
                        missed_by: now.saturating_duration_since(deadline),
                    }),
                ));
                return;
            }
        }
        job.retries += 1;
        job.suspect = true;
        self.stats.retried += 1;
        self.shared.requeue(job);
    }

    /// After a failed flush on a supervised pool: rebuild this card's
    /// engine from the factory — exponential backoff, at most
    /// [`ServeConfig::restart_cap`] consecutive attempts without a clean
    /// flush — and replay the session pin registry into the fresh
    /// engine. Returns `false` when the card must retire instead.
    fn recover(&mut self) -> bool {
        let Some(factory) = self.factory.clone() else {
            return false;
        };
        loop {
            if self.consecutive_restarts >= self.shared.config.restart_cap {
                return false;
            }
            self.consecutive_restarts += 1;
            self.shared.set_health(self.index, CardHealth::Restarting);
            // 1×, 2×, 4×, … the configured backoff, capped at a second:
            // a flapping card must not hammer the factory, and must not
            // stall its share of the queue for long either.
            let shift = (self.consecutive_restarts - 1).min(10);
            let backoff = self
                .shared
                .config
                .restart_backoff
                .saturating_mul(1u32 << shift)
                .min(Duration::from_secs(1));
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            // The factory itself may panic (the "device" is still sick):
            // that is a failed attempt, not a dead worker.
            let index = self.index;
            match catch_unwind(AssertUnwindSafe(|| factory(index))) {
                Err(_) => continue,
                Ok(engine) => {
                    self.engine = engine;
                    self.capacity = self.engine.operand_capacity_bits();
                    self.stats.restarts += 1;
                    // Replay the session pins so the reborn card serves
                    // registered operands hash-free from its first flush.
                    // A panic during replay (a poisonous pin, the device
                    // dying again) fails this attempt.
                    if catch_unwind(AssertUnwindSafe(|| self.replay_pins())).is_err() {
                        self.cache.clear();
                        self.pinned.clear();
                        continue;
                    }
                    self.shared.set_health(self.index, CardHealth::Live);
                    self.publish();
                    return true;
                }
            }
        }
    }

    /// Re-prepares every registered session operand into the (fresh)
    /// engine's pin store — the warm-up that lets a restarted card keep
    /// its hash-free pinned serving.
    fn replay_pins(&mut self) {
        if self.cache.is_disabled() {
            return;
        }
        let pins = lock_or_recover(&self.shared.pin_registry).snapshot();
        for (id, operand) in pins {
            if let Ok(handle) = self.engine.prepare(&operand) {
                if handle.is_cached() {
                    self.pin(id, handle);
                }
            }
        }
    }

    /// Publishes this flush's counters, then delivers the buffered
    /// replies — in that order, so `ServerPool::stats` never lags a
    /// ticket the caller has already collected.
    fn finish_flush(&self, replies: Vec<Reply>) {
        self.publish();
        for (reply, outcome) in replies {
            reply.send(outcome);
        }
    }

    /// Phase 1 of a flush: resolve pinned operands by id (no hashing),
    /// look every inline operand up in this card's digest cache, claim
    /// speculatively staged spectra, and prepare the remaining misses
    /// **in parallel** at the product level
    /// ([`EvalEngine::prepare_many`]).
    fn prepare_operands(&mut self, live: &[Submitted]) {
        if self.cache.is_disabled() {
            return;
        }
        let provenance = self.engine.backend().provenance();
        let mut hot_hits: Vec<u64> = Vec::new();
        // Unique operands this flush must prepare, in first-seen order,
        // with the count of their repeat sightings inside the same flush:
        // once the first sighting's preparation lands, every repeat is
        // served from the cache in phase 2 — a hit, and evidence of
        // recurrence, same as a cross-flush hit. Until then the repeats
        // stay provisional (a raw or failed preparation caches nothing,
        // so crediting them up front would invent hits).
        let mut missing: Vec<&UBig> = Vec::new();
        // Session-pinned operands this card has not prepared yet (first
        // sighting, or the pin was dropped by an idle trim): prepared in
        // the same parallel pass, retained by id.
        let mut pinned_missing: Vec<(u64, &UBig)> = Vec::new();
        let mut repeats: HashMap<u64, u64> = HashMap::new();
        let mut scheduled: HashSet<u64> = HashSet::new();
        let mut pinned_scheduled: HashSet<u64> = HashSet::new();
        let mut pinned_repeats: HashMap<u64, u64> = HashMap::new();
        for job in live {
            for side in [&job.request.a, &job.request.b] {
                let operand = match side {
                    Operand::Pinned { id, value } => {
                        // The whole point of pinning: resolution is an
                        // integer map lookup, never a digest of the
                        // operand's data, and the handle is exempt from
                        // LRU pressure. Repeats behind a first sighting
                        // in the same flush stay provisional until its
                        // preparation lands, like digest-cache repeats.
                        if let Some(slot) = self.pinned.get_mut(id) {
                            self.pin_tick += 1;
                            slot.last_used = self.pin_tick;
                            self.stats.pinned_hits += 1;
                        } else if !pinned_scheduled.insert(*id) {
                            *pinned_repeats.entry(*id).or_insert(0) += 1;
                        } else {
                            pinned_missing.push((*id, value));
                        }
                        continue;
                    }
                    Operand::Inline(value) => value,
                };
                let key = digest(operand);
                if self.cache.touch(operand, key) {
                    self.stats.cache_hits += 1;
                    if self.shared.speculation {
                        hot_hits.push(key);
                    }
                    continue;
                }
                if scheduled.contains(&key) {
                    *repeats.entry(key).or_insert(0) += 1;
                    continue;
                }
                if self.shared.speculation {
                    let staged = lock_or_recover(&self.shared.spec_store).take(operand, provenance);
                    if let Some(handle) = staged {
                        self.cache.insert(operand.clone(), key, handle);
                        self.stats.speculative_hits += 1;
                        scheduled.insert(key);
                        continue;
                    }
                }
                scheduled.insert(key);
                missing.push(operand);
            }
        }
        // ONE parallel preparation pass over pinned misses and digest
        // misses together — a lone unpinned session operand overlaps the
        // inline misses' transforms instead of serializing ahead of
        // them. Pinned handles go into the id-keyed pin map; a
        // preparation that fails (or caches nothing) leaves the pin
        // unresolved — the job runs raw and surfaces the backend's own
        // error.
        let to_prepare: Vec<&UBig> = pinned_missing
            .iter()
            .map(|(_, value)| *value)
            .chain(missing.iter().copied())
            .collect();
        let mut prepared_results = if to_prepare.is_empty() {
            Vec::new()
        } else {
            self.engine.prepare_many(&to_prepare)
        }
        .into_iter();
        for ((id, _), prepared) in pinned_missing.iter().zip(prepared_results.by_ref()) {
            if let Ok(handle) = prepared {
                if handle.is_cached() {
                    self.pin(*id, handle);
                    // The pin's repeats in this same flush resolve
                    // from the map in phase 2 — hash-free hits.
                    self.stats.pinned_hits += pinned_repeats.remove(id).unwrap_or(0);
                }
            }
        }
        // Only a successful, spectrum-bearing preparation touches the
        // cache; a raw-fallback backend caches no spectrum, so retaining
        // handles would only clone operands into resident memory for zero
        // transform savings — turn the cache off for good.
        let mut disabled = false;
        {
            for (operand, prepared) in missing.iter().zip(prepared_results) {
                match prepared {
                    Ok(handle) if handle.is_cached() => {
                        let key = digest(operand);
                        self.cache.insert((*operand).clone(), key, handle);
                        self.stats.cache_misses += 1;
                        // The repeats of a now-cached operand are hits.
                        if let Some(count) = repeats.remove(&key) {
                            self.stats.cache_hits += count;
                            if self.shared.speculation {
                                hot_hits.extend(std::iter::repeat_n(key, count as usize));
                            }
                        }
                    }
                    Ok(_) => {
                        self.cache.disable();
                        disabled = true;
                        break;
                    }
                    // Unpreparable (e.g. the operand alone exceeds the
                    // transform capacity): the job runs raw and surfaces
                    // the backend's own error.
                    Err(_) => {}
                }
            }
        }
        // Repeats of operands that hit the speculative store also resolve
        // from the cache in phase 2.
        if !disabled {
            for (&key, &count) in &repeats {
                if self.cache.contains_key(key) {
                    self.stats.cache_hits += count;
                    if self.shared.speculation {
                        hot_hits.extend(std::iter::repeat_n(key, count as usize));
                    }
                }
            }
        }
        if self.shared.speculation && !hot_hits.is_empty() {
            let mut hot = lock_or_recover(&self.shared.hot);
            // Bound the statistics map: a pathological stream of distinct
            // hot digests must not grow resident memory without limit.
            if hot.len() > 4096 {
                hot.clear();
            }
            for key in hot_hits {
                *hot.entry(key).or_insert(0) += 1;
            }
        }
    }
}

/// When the batch currently forming must flush: the oldest *eligible*
/// job's age bound, pulled earlier by any eligible job's deadline
/// (running a job *before* its deadline beats expiring it at the full
/// batch window). The deadline pull is scheduled
/// [`DEADLINE_SCHEDULING_MARGIN`] *before* the deadline itself, so the
/// job has started executing — not just been scheduled — by the instant
/// it promised; a flush fired exactly at the deadline would always find
/// the job microseconds expired.
fn flush_due(pending: &VecDeque<Submitted>, eligible: &[usize], config: &ServeConfig) -> Instant {
    let jobs = || eligible.iter().filter_map(|&i| pending.get(i));
    // An empty (or stale) eligible set means there is nothing to wait
    // for: flush now rather than panic a worker over a racing index.
    let Some(oldest) = jobs().map(|job| job.enqueued).min() else {
        return Instant::now();
    };
    jobs()
        .filter_map(|job| job.request.deadline)
        .map(|d| d.checked_sub(DEADLINE_SCHEDULING_MARGIN).unwrap_or(d))
        .fold(oldest + config.max_delay, Instant::min)
}

/// Claims up to `max_batch` jobs from the claiming card's eligible set
/// under the configured [`FlushPolicy`] and stamps their dequeue
/// instant; ineligible jobs stay queued for the cards that fit them.
fn pop_batch(
    pending: &mut VecDeque<Submitted>,
    eligible: &[usize],
    config: &ServeConfig,
) -> Vec<Submitted> {
    let take = eligible.len().min(config.max_batch.max(1));
    // Contiguous-prefix fast path: with every pending job eligible (the
    // Shared default) FIFO is a straight O(take) front drain — no index
    // set, no queue rebuild.
    if matches!(config.policy, FlushPolicy::Fifo) && eligible.len() == pending.len() {
        let mut batch: Vec<Submitted> = pending.drain(..take).collect();
        let now = Instant::now();
        for job in &mut batch {
            job.seen = now;
        }
        return batch;
    }
    let chosen: HashSet<usize> = match config.policy {
        FlushPolicy::Fifo => eligible.iter().take(take).copied().collect(),
        FlushPolicy::Edf => {
            // Rank the eligible jobs: earliest deadline first,
            // deadline-less jobs last, arrival order as tie-breaker.
            let mut order: Vec<usize> = eligible.to_vec();
            order.sort_by(|&i, &j| {
                match (pending.get(i), pending.get(j)) {
                    (Some(a), Some(b)) => match (a.request.deadline, b.request.deadline) {
                        (Some(da), Some(db)) => da.cmp(&db).then(a.seq.cmp(&b.seq)),
                        (Some(_), None) => core::cmp::Ordering::Less,
                        (None, Some(_)) => core::cmp::Ordering::Greater,
                        (None, None) => a.seq.cmp(&b.seq),
                    },
                    // A stale index (nothing pending there) sorts last.
                    (Some(_), None) => core::cmp::Ordering::Less,
                    (None, Some(_)) => core::cmp::Ordering::Greater,
                    (None, None) => core::cmp::Ordering::Equal,
                }
            });
            order.truncate(take);
            order.into_iter().collect()
        }
    };
    let mut batch = Vec::with_capacity(take);
    if chosen.len() == pending.len() {
        batch.extend(pending.drain(..));
    } else {
        let mut rest = VecDeque::with_capacity(pending.len().saturating_sub(take));
        for (i, job) in pending.drain(..).enumerate() {
            if chosen.contains(&i) {
                batch.push(job);
            } else {
                rest.push_back(job);
            }
        }
        *pending = rest;
    }
    let now = Instant::now();
    for job in &mut batch {
        job.seen = now;
    }
    batch
}

/// The speculative preparer: watches the queue and the fleet's hit
/// statistics, and transforms the fresh partners of hot recurring
/// operands into the shared staging store — off the cards' critical path.
fn run_speculator<M: Multiplier + Sync>(engine: EvalEngine<M>, shared: Arc<PoolShared>) {
    let config = &shared.config;
    let hot_after = config.speculate_hot_after.max(1);
    let per_pass = config.max_batch.max(1);
    loop {
        // Snapshot speculation candidates under the queue lock: pending
        // jobs where one side's digest is hot (its spectrum is surely
        // cached on some card) and the other side — the stream side — is
        // neither hot nor already staged. Digests were stamped at
        // submission (outside this lock), so the scan is map lookups
        // plus at most `per_pass` bounded operand clones — it never
        // hashes operand data while submitters and cards contend on the
        // mutex.
        let candidates: Vec<(u64, UBig)> = {
            let mut state = shared.lock_state();
            loop {
                if state.closed {
                    return;
                }
                if !state.pending.is_empty() {
                    break;
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            let hot = lock_or_recover(&shared.hot);
            let store = lock_or_recover(&shared.spec_store);
            let is_hot = |key: u64| hot.get(&key).copied().unwrap_or(0) >= hot_after;
            let mut picked: Vec<(u64, UBig)> = Vec::new();
            let mut picked_keys: HashSet<u64> = HashSet::new();
            'scan: for job in state.pending.iter() {
                let Some((key_a, key_b)) = job.digests else {
                    continue;
                };
                let (a, b) = job.request.operands();
                for (this, key, partner_key) in [(a, key_a, key_b), (b, key_b, key_a)] {
                    if is_hot(partner_key)
                        && !is_hot(key)
                        && !store.contains(key)
                        && !picked_keys.contains(&key)
                    {
                        picked_keys.insert(key);
                        picked.push((key, this.clone()));
                        if picked.len() >= per_pass {
                            break 'scan;
                        }
                    }
                }
            }
            picked
        };
        if candidates.is_empty() {
            // Traffic is flowing but nothing is speculable right now
            // (operands cold, or already staged); re-check after one
            // batch window rather than spinning on the queue lock.
            let state = shared.lock_state();
            if state.closed {
                return;
            }
            let wait = config.max_delay.max(Duration::from_millis(1));
            drop(shared.not_empty.wait_timeout(state, wait));
            continue;
        }
        for (key, operand) in candidates {
            if shared.lock_state().closed {
                return;
            }
            if let Ok(handle) = engine.prepare(&operand) {
                if handle.is_cached() {
                    lock_or_recover(&shared.spec_store).insert(key, operand, handle);
                    shared.spec_prepares.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}
// lint: end supervisor

struct CacheSlot {
    operand: UBig,
    handle: OperandHandle,
    last_used: u64,
}

/// Per-card LRU cache of prepared operand handles, keyed by the operand's
/// 64-bit digest (collisions are verified against the stored operand, so a
/// digest clash can never serve the wrong spectrum).
struct HandleCache {
    capacity: usize,
    tick: u64,
    len: usize,
    entries: HashMap<u64, Vec<CacheSlot>>,
}

impl HandleCache {
    fn new(capacity: usize) -> HandleCache {
        HandleCache {
            capacity,
            tick: 0,
            len: 0,
            entries: HashMap::new(),
        }
    }

    fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Turns the cache off for good (raw-fallback backends: retaining
    /// handles would only clone operands into resident memory for zero
    /// transform savings).
    fn disable(&mut self) {
        self.capacity = 0;
        self.clear();
    }

    /// Looks the operand up, bumping its recency. Returns whether it was
    /// cached.
    fn touch(&mut self, operand: &UBig, key: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let tick = self.tick;
        match self
            .entries
            .get_mut(&key)
            .and_then(|chain| chain.iter_mut().find(|s| s.operand == *operand))
        {
            Some(slot) => {
                slot.last_used = tick;
                true
            }
            None => false,
        }
    }

    /// Inserts a freshly prepared handle.
    fn insert(&mut self, operand: UBig, key: u64, handle: OperandHandle) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.entry(key).or_default().push(CacheSlot {
            operand,
            handle,
            last_used: self.tick,
        });
        self.len += 1;
    }

    /// Drops every cached handle (capacity and auto-disable state are
    /// kept); the next flush re-prepares what it needs.
    fn clear(&mut self) {
        self.entries.clear();
        self.len = 0;
    }

    /// Whether any slot is cached under this digest (phase-1 repeat
    /// accounting; the operand itself is verified on `get`).
    fn contains_key(&self, key: u64) -> bool {
        self.entries
            .get(&key)
            .is_some_and(|chain| !chain.is_empty())
    }

    /// Read-only lookup (no recency update; phase 2 of a flush).
    fn get(&self, operand: &UBig) -> Option<&OperandHandle> {
        self.entries
            .get(&digest(operand))?
            .iter()
            .find(|s| s.operand == *operand)
            .map(|s| &s.handle)
    }

    /// Evicts least-recently-used entries until the capacity holds.
    fn evict_to_capacity(&mut self) {
        while self.len > self.capacity {
            let Some((&key, oldest_tick)) = self
                .entries
                .iter()
                .filter_map(|(key, chain)| {
                    chain.iter().map(|s| s.last_used).min().map(|t| (key, t))
                })
                .min_by_key(|&(_, tick)| tick)
            else {
                return;
            };
            let chain = self.entries.get_mut(&key).expect("chain just found");
            chain.retain(|s| s.last_used != oldest_tick);
            if chain.is_empty() {
                self.entries.remove(&key);
            }
            self.len = self.entries.values().map(Vec::len).sum();
        }
    }
}

/// A [`CiphertextMultiplier`] that routes every homomorphic product
/// through a serving front — a single [`ProductServer`] or a whole
/// [`ServerPool`] — so DGHV circuit evaluation (AND-trees, comparator
/// sweeps, SIMD mask products) schedules whole levels as one micro-batch
/// on the resident fleet (see `he_dghv::CircuitEvaluator::and_tree`).
///
/// The fleet's handle caches make the recurring operands of those circuits
/// (masks, accumulators) hit the cached-transform rungs without any
/// preparation calls on this side; `prepare`d factors therefore keep only
/// the raw value.
///
/// # Panics
///
/// Like the other sized backends (`SsaBackend`), products that exceed the
/// engine's capacity panic — the DGHV layer guarantees ciphertexts fit the
/// backend it was built for. Server shutdown mid-product also panics.
#[derive(Debug)]
pub struct ServedMultiplier<'a, S: Submitter = ProductServer> {
    server: &'a S,
}

impl<'a, S: Submitter> ServedMultiplier<'a, S> {
    /// A DGHV backend view over a serving front.
    pub fn new(server: &'a S) -> ServedMultiplier<'a, S> {
        ServedMultiplier { server }
    }
}

impl<S: Submitter> CiphertextMultiplier for ServedMultiplier<'_, S> {
    fn multiply(&self, a: &UBig, b: &UBig) -> UBig {
        self.server
            .submit(ProductRequest::new(a.clone(), b.clone()))
            .expect("product server closed")
            .wait()
            .expect("served product failed")
    }

    fn multiply_pairs(&self, pairs: &[(&UBig, &UBig)]) -> Vec<UBig> {
        // Submit the whole level, then collect: the fleet micro-batches
        // the stream, so independent gates of one circuit level share
        // flushes (and the cached transforms of recurring operands).
        let tickets: Vec<ProductTicket> = pairs
            .iter()
            .map(|(a, b)| {
                self.server
                    .submit(ProductRequest::new((*a).clone(), (*b).clone()))
                    .expect("product server closed")
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| t.wait().expect("served product failed"))
            .collect()
    }

    fn multiply_prepared_many(&self, a: &PreparedFactor, bs: &[&UBig]) -> Vec<UBig> {
        // The fleet's own digest caches are the preparation layer here;
        // submitting raw pairs lets it reuse the recurring factor's
        // spectrum across the whole sweep.
        let pairs: Vec<(&UBig, &UBig)> = bs.iter().map(|b| (a.raw(), *b)).collect();
        self.multiply_pairs(&pairs)
    }

    fn name(&self) -> &'static str {
        "served-engine"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyMultiplier};
    use crate::multiplier::{Karatsuba, SsaSoftware};
    use std::sync::atomic::AtomicU64;

    fn small_engine(bits: usize) -> EvalEngine<SsaSoftware> {
        EvalEngine::new(SsaSoftware::for_operand_bits(bits).unwrap())
    }

    /// A queue entry for the claim-order unit tests.
    fn test_submitted(
        seq: u64,
        base: Instant,
        deadline_ms: Option<u64>,
        tx: &mpsc::Sender<Result<UBig, ServeError>>,
    ) -> Submitted {
        let request = ProductRequest {
            a: Operand::Inline(UBig::from(seq)),
            b: Operand::Inline(UBig::from(seq)),
            deadline: deadline_ms.map(|ms| base + Duration::from_millis(ms)),
        };
        Submitted {
            required_bits: request.required_bits(),
            request,
            enqueued: base,
            seq,
            digests: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            seen: base,
            retries: 0,
            suspect: false,
            reply: ReplySink::Ticket(tx.clone()),
        }
    }

    fn small_server(config: ServeConfig) -> ProductServer {
        ProductServer::spawn(small_engine(2_000), config)
    }

    #[test]
    fn serves_products_in_submission_order() {
        let server = small_server(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        });
        let tickets: Vec<ProductTicket> = (1..=10u64)
            .map(|k| {
                server
                    .submit(ProductRequest::new(UBig::from(k), UBig::from(1_000_003u64)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=10u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * 1_000_003));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.failed + stats.expired(), 0);
        // The recurring right-hand operand hit the cache after its first
        // preparation.
        assert!(stats.cache_hits >= 9, "stats: {stats:?}");
    }

    #[test]
    fn recurring_operands_hit_the_handle_cache() {
        let server = small_server(ServeConfig::default());
        let fixed = UBig::from(0xdead_beefu64);
        let tickets: Vec<ProductTicket> = (0..8u64)
            .map(|k| {
                server
                    .submit(ProductRequest::new(fixed.clone(), UBig::from(k + 2)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (0..8u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), &fixed * &UBig::from(k + 2));
        }
        let stats = server.shutdown();
        // 16 operand lookups; `fixed` misses once, each stream element
        // misses once → at least 7 hits from the recurring operand.
        assert!(stats.cache_hits >= 7, "stats: {stats:?}");
        assert!(stats.cache_misses <= 9, "stats: {stats:?}");
    }

    #[test]
    fn expired_deadline_is_a_typed_error_and_spares_batch_mates() {
        let server = small_server(ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let doomed = server
            .submit(
                ProductRequest::new(UBig::from(3u64), UBig::from(5u64))
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        let fine = server
            .submit(ProductRequest::new(UBig::from(7u64), UBig::from(11u64)))
            .unwrap();
        assert!(matches!(doomed.wait(), Err(ServeError::Expired { .. })));
        assert_eq!(fine.wait().unwrap(), UBig::from(77u64));
        let stats = server.shutdown();
        // The zero deadline was already past at dequeue: an in-queue
        // expiry, not a flush-attributed one.
        assert_eq!(stats.expired_in_queue, 1);
        assert_eq!(stats.expired_in_flush, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn deadline_inside_the_batch_window_runs_instead_of_expiring() {
        // The deadline pulls the flush earlier than max_delay — and the
        // flush must start *before* the deadline, so the job runs. (A
        // flush scheduled exactly at the deadline would always find the
        // job microseconds expired.) The margins are generous on purpose:
        // a preempted CI runner must not expire the job (deadline) or sit
        // on it (max_delay) — the elapsed-time assertion below is what
        // proves the deadline, not max_delay, triggered the flush.
        let server = small_server(ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_secs(60),
            ..ServeConfig::default()
        });
        let started = Instant::now();
        let ticket = server
            .submit(
                ProductRequest::new(UBig::from(21u64), UBig::from(2u64))
                    .with_deadline(Duration::from_secs(2)),
            )
            .unwrap();
        assert_eq!(
            ticket
                .wait()
                .expect("deadline comfortably ahead of the flush"),
            UBig::from(42u64)
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the deadline must pull the flush well ahead of max_delay"
        );
        let stats = server.shutdown();
        assert_eq!(stats.expired(), 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn oversized_job_fails_alone() {
        let server = small_server(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(10),
            // Cache off so the oversized operands reach the multiply path
            // (prepare would already reject them) — exercising the
            // per-job isolation fallback.
            cache_capacity: 0,
            ..ServeConfig::default()
        });
        let too_big = UBig::pow2(100_000);
        let bad = server
            .submit(ProductRequest::new(too_big.clone(), too_big))
            .unwrap();
        let good = server
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))
            .unwrap();
        assert!(matches!(bad.wait(), Err(ServeError::Multiply(_))));
        assert_eq!(good.wait().unwrap(), UBig::from(42u64));
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let server = small_server(ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let tickets: Vec<ProductTicket> = (2..7u64)
            .map(|k| {
                server
                    .submit(ProductRequest::new(UBig::from(k), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        // Shutdown closes the queue; the long max_delay must not stall
        // the drain.
        let stats = server.shutdown();
        assert_eq!(stats.completed, 5);
        for (k, ticket) in (2..7u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * k));
        }
    }

    #[test]
    fn idle_trim_releases_the_handle_cache() {
        let server = small_server(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            idle_trim_after: Duration::from_millis(20),
            ..ServeConfig::default()
        });
        let fixed = UBig::from(0xfeedu64);
        let first = server
            .submit(ProductRequest::new(fixed.clone(), UBig::from(3u64)))
            .unwrap();
        assert_eq!(first.wait().unwrap(), &fixed * &UBig::from(3u64));
        // Let the worker go quiet long enough to trim scratch AND spectra.
        std::thread::sleep(Duration::from_millis(200));
        let second = server
            .submit(ProductRequest::new(fixed.clone(), UBig::from(5u64)))
            .unwrap();
        assert_eq!(second.wait().unwrap(), &fixed * &UBig::from(5u64));
        let stats = server.shutdown();
        assert!(stats.idle_trims >= 1, "stats: {stats:?}");
        // The recurring operand was re-prepared after the trim — every
        // lookup of this run was a miss, nothing survived the idle pass.
        assert_eq!(stats.cache_hits, 0, "stats: {stats:?}");
        assert_eq!(stats.cache_misses, 4, "stats: {stats:?}");
    }

    #[test]
    fn raw_backends_serve_with_the_cache_auto_disabled() {
        let server = ProductServer::spawn(EvalEngine::new(Karatsuba), ServeConfig::default());
        let tickets: Vec<ProductTicket> = (0..3)
            .map(|_| {
                server
                    .submit(ProductRequest::new(UBig::from(9u64), UBig::from(9u64)))
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap(), UBig::from(81u64));
        }
        let stats = server.shutdown();
        // Raw handles cache no spectrum, so the server stops digesting
        // and cloning operands after the first sighting.
        assert_eq!(stats.cache_hits, 0, "stats: {stats:?}");
        assert_eq!(stats.cache_misses, 0, "stats: {stats:?}");
    }

    #[test]
    fn pool_serves_across_all_cards() {
        let pool = ServerPool::spawn(
            vec![small_engine(2_000), small_engine(2_000)],
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        assert_eq!(pool.workers(), 2);
        let tickets: Vec<ProductTicket> = (1..=24u64)
            .map(|k| {
                pool.submit(ProductRequest::new(UBig::from(k), UBig::from(999_983u64)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=24u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * 999_983));
        }
        let stats = pool.shutdown();
        assert_eq!(stats.per_worker.len(), 2);
        assert_eq!(stats.total().completed, 24);
        assert_eq!(stats.total().failed + stats.total().expired(), 0);
    }

    #[test]
    fn heterogeneous_cards_each_prepare_their_own_operands() {
        // Cards of different transform geometry share a queue: handles
        // are provenance-stamped per instance, so each card caches its
        // own spectra and every product stays bit-exact regardless of
        // which card claims it.
        let pool = ServerPool::spawn(
            vec![small_engine(2_000), small_engine(4_000)],
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let fixed = UBig::from(0xabcdu64);
        let tickets: Vec<ProductTicket> = (1..=16u64)
            .map(|k| {
                pool.submit(ProductRequest::new(fixed.clone(), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=16u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), &fixed * &UBig::from(k));
        }
        let stats = pool.shutdown();
        assert_eq!(stats.total().completed, 16);
    }

    #[test]
    fn edf_claims_earliest_deadlines_first() {
        let config = ServeConfig {
            max_batch: 2,
            policy: FlushPolicy::Edf,
            ..ServeConfig::default()
        };
        let mut pending: VecDeque<Submitted> = VecDeque::new();
        let base = Instant::now();
        let (tx, _rx) = mpsc::channel();
        for (seq, deadline_ms) in [
            (0u64, None),
            (1, Some(500u64)),
            (2, Some(50)),
            (3, Some(200)),
        ] {
            pending.push_back(test_submitted(seq, base, deadline_ms, &tx));
        }
        let all: Vec<usize> = (0..pending.len()).collect();
        let batch = pop_batch(&mut pending, &all, &config);
        let seqs: Vec<u64> = batch.iter().map(|j| j.seq).collect();
        // The 50 ms and 200 ms deadlines outrank the 500 ms one and the
        // deadline-less job.
        assert_eq!(seqs, vec![2, 3]);
        assert_eq!(pending.len(), 2);
        // FIFO takes arrival order regardless of deadlines.
        let fifo = ServeConfig {
            policy: FlushPolicy::Fifo,
            ..config
        };
        let all: Vec<usize> = (0..pending.len()).collect();
        let batch = pop_batch(&mut pending, &all, &fifo);
        let seqs: Vec<u64> = batch.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn edf_expires_fewer_than_fifo_under_overload() {
        // Deterministic queue-order check (no live threads): 4 pending
        // jobs, capacity for 2 per flush. The last two carry the tight
        // deadlines; EDF runs them first, FIFO lets them expire.
        let base = Instant::now();
        let (tx, _rx) = mpsc::channel();
        let build = |policy: FlushPolicy| {
            let mut pending: VecDeque<Submitted> = VecDeque::new();
            for (seq, deadline) in [(0u64, None), (1, None), (2, Some(1u64)), (3, Some(2))] {
                pending.push_back(test_submitted(seq, base, deadline, &tx));
            }
            let config = ServeConfig {
                max_batch: 2,
                policy,
                ..ServeConfig::default()
            };
            let all: Vec<usize> = (0..pending.len()).collect();
            pop_batch(&mut pending, &all, &config)
                .iter()
                .map(|j| j.seq)
                .collect::<Vec<u64>>()
        };
        assert_eq!(build(FlushPolicy::Edf), vec![2, 3]);
        assert_eq!(build(FlushPolicy::Fifo), vec![0, 1]);
    }

    #[test]
    fn cancelled_jobs_are_dropped_at_claim_and_counted() {
        // A long batch window keeps the first job queued until the batch
        // fills, so the cancel lands deterministically before the claim.
        let server = small_server(ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(500),
            ..ServeConfig::default()
        });
        let doomed = server
            .submit(ProductRequest::new(UBig::from(3u64), UBig::from(5u64)))
            .unwrap();
        doomed.cancel();
        let survivors: Vec<ProductTicket> = (2..5u64)
            .map(|k| {
                server
                    .submit(ProductRequest::new(UBig::from(k), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (2..5u64).zip(survivors) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * k));
        }
        let stats = server.shutdown();
        assert_eq!(stats.cancelled, 1, "stats: {stats:?}");
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.expired() + stats.failed, 0);
    }

    #[test]
    fn pop_batch_leaves_ineligible_jobs_queued() {
        // The BySize claim path: a card only pops its eligible subset;
        // the rest stay in arrival order for the cards that fit them.
        let config = ServeConfig {
            max_batch: 8,
            policy: FlushPolicy::Fifo,
            ..ServeConfig::default()
        };
        let base = Instant::now();
        let (tx, _rx) = mpsc::channel();
        let mut pending: VecDeque<Submitted> = VecDeque::new();
        for seq in 0..5u64 {
            pending.push_back(test_submitted(seq, base, None, &tx));
        }
        let eligible = vec![1usize, 3];
        let batch = pop_batch(&mut pending, &eligible, &config);
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(
            pending.iter().map(|j| j.seq).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn by_size_routing_keeps_oversized_jobs_off_small_cards() {
        // A small and a large card under BySize: a job only the large
        // card fits must never fail, however many times it is submitted.
        let pool = ServerPool::spawn(
            vec![small_engine(2_000), small_engine(50_000)],
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                route: RoutePolicy::BySize,
                ..ServeConfig::default()
            },
        );
        let big = UBig::pow2(20_000);
        let tickets: Vec<ProductTicket> = (1..=6u64)
            .map(|k| {
                pool.submit(ProductRequest::new(big.clone(), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=6u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), &big * &UBig::from(k));
        }
        // Small jobs still flow (either card may take them).
        let small = pool
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))
            .unwrap();
        assert_eq!(small.wait().unwrap(), UBig::from(42u64));
        let stats = pool.shutdown();
        assert_eq!(stats.total().completed, 7);
        assert_eq!(stats.total().failed, 0, "stats: {stats:?}");
    }

    #[test]
    fn session_pins_survive_lru_pressure() {
        // Cache capacity of 1 would evict any digest-cached operand on
        // every flush of fresh traffic; the pinned operand is exempt.
        let server = small_server(ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            cache_capacity: 1,
            ..ServeConfig::default()
        });
        let mut session = server.session();
        let fixed = UBig::from(0xabcd_ef01u64);
        session.register("acc", fixed.clone());
        assert_eq!(session.registered(), 1);
        let tickets: Vec<ProductTicket> = (2..10u64)
            .map(|k| session.submit_with("acc", UBig::from(k)).unwrap())
            .collect();
        for (k, ticket) in (2..10u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), &fixed * &UBig::from(k));
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 8);
        // One lazy preparation, then every later sighting resolved from
        // the pin map — hash-free, eviction-proof.
        assert!(stats.pinned_hits >= 7, "stats: {stats:?}");
    }

    #[test]
    fn sessions_clone_and_unregister_independently() {
        let server = small_server(ServeConfig::default());
        let mut session = server.session();
        session.register("a", UBig::from(11u64));
        let mut sibling = session.clone();
        sibling.register("b", UBig::from(13u64));
        // The clone carries "a" and its own "b"; the original only "a".
        assert_eq!(
            sibling.submit_between("a", "b").unwrap().wait().unwrap(),
            UBig::from(143u64)
        );
        assert_eq!(session.registered(), 1);
        sibling.unregister("a");
        assert_eq!(sibling.registered(), 1);
        // The original's registration is untouched by the clone's
        // unregister of the shared name.
        assert_eq!(
            session
                .submit_with("a", UBig::from(2u64))
                .unwrap()
                .wait()
                .unwrap(),
            UBig::from(22u64)
        );
        server.shutdown();
    }

    #[test]
    fn completion_queue_over_a_session_carries_tags() {
        let server = small_server(ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        });
        let mut session = server.session();
        session.register("acc", UBig::from(1_000_003u64));
        let requests: Vec<(ProductRequest, u64)> = (2..8u64)
            .map(|k| (session.request_with("acc", UBig::from(k)), k))
            .collect();
        let mut queue: CompletionQueue<'_, ClientSession, u64> = CompletionQueue::new(&session);
        for (request, tag) in requests {
            queue
                .submit_tagged(request, tag)
                .map_err(|(e, _)| e)
                .unwrap();
        }
        let mut seen = 0u64;
        while let Some(done) = queue.recv() {
            assert_eq!(
                done.result.unwrap(),
                UBig::from(done.tag) * UBig::from(1_000_003u64)
            );
            seen += 1;
        }
        assert_eq!(seen, 6);
        assert_eq!(queue.in_flight(), 0);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 6);
        assert!(stats.pinned_hits > 0, "stats: {stats:?}");
    }

    #[test]
    fn speculative_preparer_stages_hot_partners() {
        // A recurring `fixed` operand times a fresh stream: once `fixed`
        // is hot, the speculator pre-transforms the stream side while the
        // jobs wait, and the cards claim the staged spectra.
        let pool = ServerPool::spawn_speculative(
            vec![small_engine(2_000)],
            small_engine(2_000),
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(5),
                speculate_hot_after: 1,
                ..ServeConfig::default()
            },
        );
        let fixed = UBig::from(0x5eedu64);
        // Rounds of traffic: the first rounds heat `fixed` up, later
        // rounds give the speculator queued jobs to work ahead of.
        let mut served = 0u64;
        for round in 0..6u64 {
            let tickets: Vec<ProductTicket> = (0..8u64)
                .map(|k| {
                    let b = UBig::from(1 + round * 101 + k * 7919);
                    pool.submit(ProductRequest::new(fixed.clone(), b)).unwrap()
                })
                .collect();
            for (k, ticket) in (0..8u64).zip(tickets) {
                let b = UBig::from(1 + round * 101 + k * 7919);
                assert_eq!(ticket.wait().unwrap(), &fixed * &b);
                served += 1;
            }
        }
        let stats = pool.shutdown();
        assert_eq!(stats.total().completed, served);
        // The speculator transformed at least one stream operand off the
        // critical path. (Claims are racy — the card may beat the
        // speculator to any given operand — but across 48 products some
        // speculative work must have landed.)
        assert!(
            stats.speculative_prepares > 0,
            "speculator never ran: {stats:?}"
        );
    }

    #[test]
    fn spec_store_verifies_operand_and_provenance() {
        let engine_small = small_engine(2_000);
        let engine_large = small_engine(500_000);
        let op = UBig::from(77u64);
        let handle = engine_small.prepare(&op).unwrap();
        let mut store = SpecStore::new(4);
        store.insert(digest(&op), op.clone(), handle);
        // A different geometry cannot claim the staged spectrum…
        assert!(store
            .take(&op, engine_large.backend().provenance())
            .is_none());
        // …a different operand cannot either…
        assert!(store
            .take(&UBig::from(78u64), engine_small.backend().provenance())
            .is_none());
        // …the matching instance takes it exactly once.
        assert!(store
            .take(&op, engine_small.backend().provenance())
            .is_some());
        assert!(store
            .take(&op, engine_small.backend().provenance())
            .is_none());
    }

    #[test]
    fn spec_store_evicts_oldest_first() {
        let engine = small_engine(2_000);
        let provenance = engine.backend().provenance();
        let mut store = SpecStore::new(2);
        let ops: Vec<UBig> = (1..=3u64).map(UBig::from).collect();
        for op in &ops {
            let handle = engine.prepare(op).unwrap();
            store.insert(digest(op), op.clone(), handle);
        }
        assert!(store.take(&ops[0], provenance).is_none(), "oldest evicted");
        assert!(store.take(&ops[1], provenance).is_some());
        assert!(store.take(&ops[2], provenance).is_some());
    }

    #[test]
    fn live_stats_observe_a_running_pool() {
        let pool = ServerPool::spawn(
            vec![small_engine(2_000)],
            ServeConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<ProductTicket> = (1..=6u64)
            .map(|k| {
                pool.submit(ProductRequest::new(UBig::from(k), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=6u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * k));
        }
        // All tickets answered, so the flush-boundary snapshots must have
        // caught up with every completion.
        let live = pool.stats();
        assert_eq!(live.total().completed, 6);
        let stats = pool.shutdown();
        assert_eq!(stats.total().completed, 6);
    }

    #[test]
    fn cache_evicts_to_capacity_lru() {
        let engine = EvalEngine::new(SsaSoftware::for_operand_bits(128).unwrap());
        let mut cache = HandleCache::new(2);
        let ops: Vec<UBig> = (1..=3u64).map(UBig::from).collect();
        for op in &ops {
            let key = digest(op);
            assert!(!cache.touch(op, key));
            cache.insert(op.clone(), key, engine.prepare(op).unwrap());
        }
        // Touch op[1] so op[0] is the LRU entry.
        assert!(cache.touch(&ops[1], digest(&ops[1])));
        cache.evict_to_capacity();
        assert_eq!(cache.len, 2);
        assert!(cache.get(&ops[0]).is_none(), "LRU entry evicted");
        assert!(cache.get(&ops[1]).is_some());
        assert!(cache.get(&ops[2]).is_some());
    }

    #[test]
    fn unpreparable_operands_leave_no_cache_residue() {
        // Oversized operands fail preparation; the flush must not leak
        // digest chains for them (phase 1 only inserts successes).
        let server = small_server(ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            ..ServeConfig::default()
        });
        let oversized = UBig::pow2(100_000);
        let bad = server
            .submit(ProductRequest::new(oversized.clone(), oversized))
            .unwrap();
        assert!(matches!(bad.wait(), Err(ServeError::Multiply(_))));
        let good = server
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(9u64)))
            .unwrap();
        assert_eq!(good.wait().unwrap(), UBig::from(54u64));
        let stats = server.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        // The oversized operand never counted as a miss (it was never
        // cached), the good pair paid two.
        assert_eq!(stats.cache_misses, 2, "stats: {stats:?}");
    }

    /// A card whose first `fails` batch calls return a transient device
    /// error, then heal — the deterministic retry harness.
    #[derive(Debug)]
    struct FlakyCard {
        fails: AtomicU64,
    }

    impl Multiplier for FlakyCard {
        fn multiply(&self, a: &UBig, b: &UBig) -> Result<UBig, MultiplyError> {
            Ok(a.mul_schoolbook(b))
        }

        fn multiply_batch_into(
            &self,
            jobs: &[ProductJob<'_>],
            out: &mut [UBig],
        ) -> Result<(), MultiplyError> {
            if self.fails.load(Ordering::Relaxed) > 0 {
                self.fails.fetch_sub(1, Ordering::Relaxed);
                return Err(MultiplyError::Device("transient DMA glitch".into()));
            }
            for (job, slot) in jobs.iter().zip(out) {
                let (a, b) = match job {
                    ProductJob::Raw(a, b) => (*a, *b),
                    _ => unreachable!("cache disabled in this test"),
                };
                *slot = self.multiply(a, b)?;
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "flaky-card"
        }
    }

    #[test]
    fn transient_device_errors_retry_to_success() {
        // Two transient faults, retry_limit 2: the job survives exactly at
        // its retry budget and completes on the third attempt.
        let pool = ServerPool::spawn(
            vec![EvalEngine::new(FlakyCard {
                fails: AtomicU64::new(2),
            })],
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                cache_capacity: 0,
                retry_limit: 2,
                ..ServeConfig::default()
            },
        );
        let ticket = pool
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))
            .unwrap();
        assert_eq!(ticket.wait().unwrap(), UBig::from(42u64));
        let stats = pool.shutdown().total();
        assert_eq!(stats.retried, 2, "stats: {stats:?}");
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.restarts, 0, "errors retry without a card rebuild");
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_device_error() {
        let pool = ServerPool::spawn(
            vec![EvalEngine::new(FlakyCard {
                fails: AtomicU64::new(100),
            })],
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                cache_capacity: 0,
                retry_limit: 2,
                ..ServeConfig::default()
            },
        );
        let ticket = pool
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))
            .unwrap();
        assert!(matches!(
            ticket.wait(),
            Err(ServeError::Multiply(MultiplyError::Device(_)))
        ));
        let stats = pool.shutdown().total();
        assert_eq!(stats.retried, 2, "stats: {stats:?}");
        assert_eq!(stats.failed, 1);
    }

    #[test]
    fn supervised_card_restarts_after_a_panic() {
        // The factory's first build dies on every flush; rebuilds are
        // clean — so the in-flight jobs must come back via retry and the
        // card must finish Live.
        let builds = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&builds);
        let pool = ServerPool::with_backend_factory(
            1,
            move |_card| {
                let plan = if counter.fetch_add(1, Ordering::Relaxed) == 0 {
                    FaultPlan::new(11).panic_every(1)
                } else {
                    FaultPlan::new(11)
                };
                EvalEngine::new(FaultyMultiplier::new(
                    SsaSoftware::for_operand_bits(2_000).unwrap(),
                    plan,
                ))
            },
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                restart_backoff: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<ProductTicket> = (1..=3u64)
            .map(|k| {
                pool.submit(ProductRequest::new(UBig::from(k), UBig::from(10u64)))
                    .unwrap()
            })
            .collect();
        for (k, ticket) in (1..=3u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(10 * k));
        }
        let stats = pool.shutdown();
        assert_eq!(stats.health, vec![CardHealth::Live]);
        let total = stats.total();
        assert_eq!(total.completed, 3);
        assert!(total.restarts >= 1, "stats: {total:?}");
        assert!(total.retried >= 1, "stats: {total:?}");
        assert!(builds.load(Ordering::Relaxed) >= 2, "factory rebuilt");
    }

    #[test]
    fn poison_job_is_quarantined_and_innocents_survive() {
        // One poison operand panics every flush it joins (even solo); the
        // fleet must isolate it, answer it `Poisoned`, and keep serving.
        let poison = UBig::from(0xbad_f00du64);
        let plan_poison = poison.clone();
        let pool = ServerPool::with_backend_factory(
            1,
            move |_card| {
                EvalEngine::new(FaultyMultiplier::new(
                    SsaSoftware::for_operand_bits(2_000).unwrap(),
                    FaultPlan::new(5).poison(plan_poison.clone()),
                ))
            },
            ServeConfig {
                max_batch: 4,
                max_delay: Duration::from_millis(1),
                retry_limit: 2,
                restart_backoff: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let innocent_a = pool
            .submit(ProductRequest::new(UBig::from(6u64), UBig::from(7u64)))
            .unwrap();
        let doomed = pool
            .submit(ProductRequest::new(poison.clone(), UBig::from(3u64)))
            .unwrap();
        let innocent_b = pool
            .submit(ProductRequest::new(UBig::from(8u64), UBig::from(9u64)))
            .unwrap();
        assert_eq!(innocent_a.wait().unwrap(), UBig::from(42u64));
        assert_eq!(innocent_b.wait().unwrap(), UBig::from(72u64));
        // retry_limit 2 → the poison job takes down 3 flushes (its first
        // batch plus two solo retries), then is quarantined.
        assert!(matches!(
            doomed.wait(),
            Err(ServeError::Poisoned { attempts: 3 })
        ));
        // The card itself survives the poison job's three panics.
        let after = pool
            .submit(ProductRequest::new(UBig::from(11u64), UBig::from(11u64)))
            .unwrap();
        assert_eq!(after.wait().unwrap(), UBig::from(121u64));
        let stats = pool.shutdown();
        assert_eq!(stats.health, vec![CardHealth::Live]);
        let total = stats.total();
        assert_eq!(total.poisoned, 1, "stats: {total:?}");
        assert_eq!(total.completed, 3);
        assert!(total.restarts >= 3, "one rebuild per poison panic");
    }

    #[test]
    fn unsupervised_panic_still_kills_the_card() {
        // Without a factory there is nothing to rebuild from: the panic
        // retires the card, and (as the last card) closes the pool.
        let pool = ServerPool::spawn(
            vec![EvalEngine::new(FaultyMultiplier::new(
                SsaSoftware::for_operand_bits(2_000).unwrap(),
                FaultPlan::new(17).panic_every(1),
            ))],
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let ticket = pool
            .submit(ProductRequest::new(UBig::from(2u64), UBig::from(3u64)))
            .unwrap();
        // The job retries until its budget quarantines it — or the card
        // dies first and the sink resolves Closed; either way it resolves.
        assert!(ticket.wait().is_err());
        let stats = pool.shutdown();
        assert_eq!(stats.health, vec![CardHealth::Dead]);
    }

    #[test]
    fn drain_completes_queued_work_before_joining() {
        let pool = ServerPool::spawn(
            vec![small_engine(2_000)],
            ServeConfig {
                max_batch: 2,
                // Far-future flushes: only drain's close forces the work
                // out, which is exactly what the test pins.
                max_delay: Duration::from_secs(60),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<ProductTicket> = (1..=5u64)
            .map(|k| {
                pool.submit(ProductRequest::new(UBig::from(k), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        let outcome = pool.drain(Duration::from_secs(30));
        assert!(outcome.clean, "drain finished inside its budget");
        assert_eq!(outcome.stats.total().completed, 5);
        for (k, ticket) in (1..=5u64).zip(tickets) {
            assert_eq!(ticket.wait().unwrap(), UBig::from(k * k));
        }
    }

    #[test]
    fn drain_timeout_fails_pending_jobs_closed() {
        // Every flush stalls 300 ms; a 1 ms drain budget must give up,
        // resolve what it can't run to `Closed`, and still join cleanly.
        let pool = ServerPool::spawn(
            vec![EvalEngine::new(FaultyMultiplier::new(
                SsaSoftware::for_operand_bits(2_000).unwrap(),
                FaultPlan::new(23).stall_every(1, Duration::from_millis(300)),
            ))],
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<ProductTicket> = (1..=4u64)
            .map(|k| {
                pool.submit(ProductRequest::new(UBig::from(k), UBig::from(k)))
                    .unwrap()
            })
            .collect();
        let outcome = pool.drain(Duration::from_millis(1));
        assert!(!outcome.clean, "stalled card cannot drain in 1 ms");
        let mut resolved = 0;
        let mut closed = 0;
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => resolved += 1,
                Err(ServeError::Closed) => closed += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // The in-flight flush finishes; jobs still queued at the deadline
        // are answered, not hung.
        assert_eq!(resolved + closed, 4);
        assert!(closed >= 1, "timeout cleared at least one queued job");
    }

    #[test]
    fn remote_ticket_resolves_and_reports_closed_on_dropped_resolver() {
        let (ticket, resolver) = ProductTicket::remote();
        resolver.resolve(Ok(UBig::from(42u64)));
        assert_eq!(ticket.wait().unwrap(), UBig::from(42u64));

        let (ticket, resolver) = ProductTicket::remote();
        drop(resolver);
        assert_eq!(ticket.wait(), Err(ServeError::Closed));
    }

    #[test]
    fn remote_ticket_cancel_is_visible_to_the_resolver() {
        let (ticket, resolver) = ProductTicket::remote();
        assert!(!resolver.is_cancelled());
        ticket.cancel();
        assert!(resolver.is_cancelled());
    }

    #[test]
    fn completion_channel_delivers_and_closes() {
        let (mint, receiver) = completion_channel();
        mint.sink(7).complete(Ok(UBig::from(6u64)));
        // An unanswered sink reports `Closed` from its drop.
        drop(mint.sink(8));
        let mut got = [
            receiver.recv().expect("first completion"),
            receiver.recv().expect("second completion"),
        ];
        got.sort_by_key(|(tag, _)| *tag);
        assert_eq!(got[0], (7, Ok(UBig::from(6u64))));
        assert_eq!(got[1], (8, Err(ServeError::Closed)));
        drop(mint);
        assert_eq!(receiver.recv(), None, "mint gone, channel finished");
    }

    #[test]
    fn cancellable_sink_submission_cancels_queued_jobs() {
        // One stalling card: the first job occupies it, the second is
        // cancelled while still queued and resolves `Closed`.
        let pool = ServerPool::spawn(
            vec![EvalEngine::new(FaultyMultiplier::new(
                SsaSoftware::for_operand_bits(2_000).unwrap(),
                FaultPlan::new(31).stall_every(1, Duration::from_millis(100)),
            ))],
            ServeConfig {
                max_batch: 1,
                max_delay: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let session = pool.session();
        let (mint, receiver) = completion_channel();
        let _first = session
            .submit_into_cancellable(
                ProductRequest::new(UBig::from(3u64), UBig::from(3u64)),
                mint.sink(1),
            )
            .unwrap();
        let second = session
            .submit_into_cancellable(
                ProductRequest::new(UBig::from(4u64), UBig::from(4u64)),
                mint.sink(2),
            )
            .unwrap();
        second.cancel();
        assert!(second.is_cancelled());
        drop(mint);
        let mut outcomes = HashMap::new();
        while let Some((tag, outcome)) = receiver.recv() {
            outcomes.insert(tag, outcome);
        }
        assert_eq!(outcomes[&1], Ok(UBig::from(9u64)));
        assert_eq!(outcomes[&2], Err(ServeError::Closed));
        let stats = pool.shutdown().total();
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    fn pinned_request_constructors_round_trip_ids() {
        let value = Arc::new(UBig::from(5u64));
        let request = ProductRequest::pinned_with(9, Arc::clone(&value), UBig::from(7u64));
        assert_eq!(request.operand_pins(), (Some(9), None));
        assert_eq!(request.operands(), (&*value, &UBig::from(7u64)));
        let pair = ProductRequest::pinned_pair((1, Arc::clone(&value)), (2, value));
        assert_eq!(pair.operand_pins(), (Some(1), Some(2)));
        let inline = ProductRequest::new(UBig::from(1u64), UBig::from(2u64));
        assert_eq!(inline.operand_pins(), (None, None));
    }
}
