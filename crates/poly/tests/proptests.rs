//! Property-based tests for the polynomial/ring layer.

use he_field::Fp;
use he_poly::{Poly, RingContext};
use proptest::prelude::*;

fn arb_poly(max_len: usize) -> impl Strategy<Value = Poly> {
    proptest::collection::vec(any::<u64>().prop_map(Fp::new), 0..=max_len)
        .prop_map(Poly::from_coeffs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mul_commutes(a in arb_poly(50), b in arb_poly(50)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in arb_poly(30), b in arb_poly(30), c in arb_poly(30)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn ntt_matches_schoolbook(a in arb_poly(100), b in arb_poly(100)) {
        prop_assert_eq!(a.mul_ntt(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn degree_of_product(a in arb_poly(20), b in arb_poly(20)) {
        let p = &a * &b;
        match (a.degree(), b.degree()) {
            (Some(da), Some(db)) => prop_assert_eq!(p.degree(), Some(da + db)),
            _ => prop_assert!(p.is_zero()),
        }
    }

    #[test]
    fn evaluation_homomorphism(a in arb_poly(25), b in arb_poly(25), x in any::<u64>().prop_map(Fp::new)) {
        prop_assert_eq!((&a * &b).evaluate(x), a.evaluate(x) * b.evaluate(x));
        prop_assert_eq!((&a + &b).evaluate(x), a.evaluate(x) + b.evaluate(x));
    }

    #[test]
    fn ring_product_via_poly_reduce(
        a in proptest::collection::vec(any::<u64>().prop_map(Fp::new), 16..=16),
        b in proptest::collection::vec(any::<u64>().prop_map(Fp::new), 16..=16),
    ) {
        let ring = RingContext::new(16).unwrap();
        let ra = ring.element_from(&a);
        let rb = ring.element_from(&b);
        let direct = &ra * &rb;
        let via_poly = ring.reduce(&(&Poly::from_coeffs(a) * &Poly::from_coeffs(b)));
        prop_assert_eq!(direct, via_poly);
    }

    #[test]
    fn sub_then_add_roundtrips(a in arb_poly(40), b in arb_poly(40)) {
        prop_assert_eq!(&(&a - &b) + &b, a);
    }
}
