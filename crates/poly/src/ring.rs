//! The RLWE quotient ring `R = F_p[X]/(X^n + 1)`.

use core::fmt;
use core::ops::{Add, Mul, Neg, Sub};
use std::sync::Arc;

use he_field::Fp;
use he_ntt::{NegacyclicPlan, NttError};

use crate::poly::Poly;

/// A shared context for ring arithmetic: the dimension and the planned
/// negacyclic transform.
///
/// ```
/// use he_field::Fp;
/// use he_poly::RingContext;
///
/// let ring = RingContext::new(8)?;
/// let x = ring.element_from(&[Fp::ZERO, Fp::ONE]); // X
/// // X^4 · X^4 = X^8 ≡ −1.
/// let x4 = ring.monomial(4);
/// assert_eq!((&x4 * &x4), -ring.one());
/// # drop(x);
/// # Ok::<(), he_ntt::NttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingContext {
    n: usize,
    plan: Arc<NegacyclicPlan>,
}

impl RingContext {
    /// Creates the ring `F_p[X]/(X^n + 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] unless `n` is a supported
    /// power of two.
    pub fn new(n: usize) -> Result<RingContext, NttError> {
        Ok(RingContext {
            n,
            plan: Arc::new(NegacyclicPlan::new(n)?),
        })
    }

    /// The ring dimension `n`.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// The additive identity.
    pub fn zero(&self) -> RingElement {
        RingElement {
            ctx: self.clone(),
            coeffs: vec![Fp::ZERO; self.n],
        }
    }

    /// The multiplicative identity.
    pub fn one(&self) -> RingElement {
        self.monomial(0)
    }

    /// The monomial `X^k` (reduced: `X^n ≡ −1`).
    pub fn monomial(&self, k: usize) -> RingElement {
        let mut coeffs = vec![Fp::ZERO; self.n];
        let sign = (k / self.n) % 2 == 1;
        coeffs[k % self.n] = if sign { -Fp::ONE } else { Fp::ONE };
        RingElement {
            ctx: self.clone(),
            coeffs,
        }
    }

    /// An element from (at most `n`) little-endian coefficients.
    ///
    /// # Panics
    ///
    /// Panics if more than `n` coefficients are supplied.
    pub fn element_from(&self, coeffs: &[Fp]) -> RingElement {
        assert!(coeffs.len() <= self.n, "too many coefficients for the ring");
        let mut v = coeffs.to_vec();
        v.resize(self.n, Fp::ZERO);
        RingElement {
            ctx: self.clone(),
            coeffs: v,
        }
    }

    /// Reduces an arbitrary polynomial modulo `X^n + 1`.
    pub fn reduce(&self, poly: &Poly) -> RingElement {
        let mut coeffs = vec![Fp::ZERO; self.n];
        for (i, &c) in poly.coeffs().iter().enumerate() {
            let slot = i % self.n;
            if (i / self.n).is_multiple_of(2) {
                coeffs[slot] += c;
            } else {
                coeffs[slot] -= c;
            }
        }
        RingElement {
            ctx: self.clone(),
            coeffs,
        }
    }

    /// A uniformly random element.
    pub fn random<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> RingElement {
        RingElement {
            ctx: self.clone(),
            coeffs: (0..self.n).map(|_| Fp::new(rng.gen())).collect(),
        }
    }

    /// A random element with ternary coefficients (`−1, 0, 1`) — the small
    /// secrets/errors of RLWE.
    pub fn random_ternary<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> RingElement {
        RingElement {
            ctx: self.clone(),
            coeffs: (0..self.n)
                .map(|_| match rng.gen_range(0..3) {
                    0 => Fp::ZERO,
                    1 => Fp::ONE,
                    _ => -Fp::ONE,
                })
                .collect(),
        }
    }
}

/// An element of `F_p[X]/(X^n + 1)`: exactly `n` coefficients.
#[derive(Clone)]
pub struct RingElement {
    ctx: RingContext,
    coeffs: Vec<Fp>,
}

impl RingElement {
    /// The coefficients (always length `n`).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// The ring this element belongs to.
    pub fn context(&self) -> &RingContext {
        &self.ctx
    }

    fn assert_same_ring(&self, other: &RingElement) {
        assert_eq!(
            self.ctx.n, other.ctx.n,
            "ring elements must share a dimension"
        );
    }
}

impl PartialEq for RingElement {
    fn eq(&self, other: &RingElement) -> bool {
        self.ctx.n == other.ctx.n && self.coeffs == other.coeffs
    }
}

impl Eq for RingElement {}

impl fmt::Debug for RingElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RingElement(n={}, {:?})",
            self.ctx.n,
            &self.coeffs[..self.coeffs.len().min(4)]
        )
    }
}

impl Add<&RingElement> for &RingElement {
    type Output = RingElement;

    fn add(self, rhs: &RingElement) -> RingElement {
        self.assert_same_ring(rhs);
        RingElement {
            ctx: self.ctx.clone(),
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Add for RingElement {
    type Output = RingElement;

    fn add(self, rhs: RingElement) -> RingElement {
        &self + &rhs
    }
}

impl Sub<&RingElement> for &RingElement {
    type Output = RingElement;

    fn sub(self, rhs: &RingElement) -> RingElement {
        self.assert_same_ring(rhs);
        RingElement {
            ctx: self.ctx.clone(),
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Sub for RingElement {
    type Output = RingElement;

    fn sub(self, rhs: RingElement) -> RingElement {
        &self - &rhs
    }
}

impl Neg for RingElement {
    type Output = RingElement;

    fn neg(self) -> RingElement {
        RingElement {
            coeffs: self.coeffs.iter().map(|&c| -c).collect(),
            ctx: self.ctx,
        }
    }
}

impl Neg for &RingElement {
    type Output = RingElement;

    fn neg(self) -> RingElement {
        -self.clone()
    }
}

impl Mul<&RingElement> for &RingElement {
    type Output = RingElement;

    /// Negacyclic NTT product — two forward transforms, a pointwise
    /// product and an inverse, exactly the accelerator's dataflow.
    fn mul(self, rhs: &RingElement) -> RingElement {
        self.assert_same_ring(rhs);
        RingElement {
            ctx: self.ctx.clone(),
            coeffs: self.ctx.plan.multiply(&self.coeffs, &rhs.coeffs),
        }
    }
}

impl Mul for RingElement {
    type Output = RingElement;

    fn mul(self, rhs: RingElement) -> RingElement {
        &self * &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn x_to_the_n_is_minus_one() {
        let ring = RingContext::new(16).unwrap();
        assert_eq!(ring.monomial(16), -ring.one());
        assert_eq!(ring.monomial(32), ring.one());
        let x8 = ring.monomial(8);
        assert_eq!(&x8 * &x8, -ring.one());
    }

    #[test]
    fn reduce_matches_monomial_convention() {
        let ring = RingContext::new(8).unwrap();
        // X^9 ≡ −X.
        let reduced = ring.reduce(&Poly::monomial(9));
        assert_eq!(reduced, -ring.monomial(1));
        // X^16 ≡ 1.
        assert_eq!(ring.reduce(&Poly::monomial(16)), ring.one());
    }

    #[test]
    fn ring_product_matches_reduce_of_poly_product() {
        let mut rng = StdRng::seed_from_u64(5);
        let ring = RingContext::new(32).unwrap();
        let a = ring.random(&mut rng);
        let b = ring.random(&mut rng);
        let direct = &a * &b;
        let via_poly = ring.reduce(
            &(&Poly::from_coeffs(a.coeffs().to_vec()) * &Poly::from_coeffs(b.coeffs().to_vec())),
        );
        assert_eq!(direct, via_poly);
    }

    #[test]
    fn ring_axioms() {
        let mut rng = StdRng::seed_from_u64(6);
        let ring = RingContext::new(64).unwrap();
        let a = ring.random(&mut rng);
        let b = ring.random(&mut rng);
        let c = ring.random(&mut rng);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        assert_eq!(&a * &ring.one(), a.clone());
        assert_eq!(&a * &ring.zero(), ring.zero());
        assert_eq!(&a - &a, ring.zero());
    }

    #[test]
    fn ternary_elements_are_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let ring = RingContext::new(128).unwrap();
        let t = ring.random_ternary(&mut rng);
        for &c in t.coeffs() {
            assert!(c == Fp::ZERO || c == Fp::ONE || c == -Fp::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn cross_ring_operations_panic() {
        let r8 = RingContext::new(8).unwrap();
        let r16 = RingContext::new(16).unwrap();
        let _ = &r8.one() + &r16.one();
    }
}
