//! A compact RLWE symmetric encryption scheme on the ring — the
//! lattice-side workload of Section III, as a library (the
//! `rlwe_polymul` example shows the same flow inline).
//!
//! Encryption of a binary message polynomial `m`:
//!
//! ```text
//! a  ← uniform in R,   e ← small,   s = secret (small)
//! ct = (c0, c1) = (a·s + e + ⌊q/2⌋·m,  −a)
//! ```
//!
//! Decryption computes `c0 + c1·s = e + ⌊q/2⌋·m` and rounds each
//! coefficient to the nearer of `{0, ⌊q/2⌋}`. Every ring product is a
//! negacyclic NTT — the transform the accelerator implements.

use he_field::{Fp, P};
use rand::Rng;

use crate::ring::{RingContext, RingElement};

/// The RLWE secret key: a small ring element.
#[derive(Debug, Clone)]
pub struct RlweSecretKey {
    s: RingElement,
}

/// An RLWE ciphertext pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlweCiphertext {
    c0: RingElement,
    c1: RingElement,
}

impl RlweCiphertext {
    /// The `c0` component.
    pub fn c0(&self) -> &RingElement {
        &self.c0
    }

    /// The `c1` component.
    pub fn c1(&self) -> &RingElement {
        &self.c1
    }

    /// Homomorphic addition (message bits XOR as long as errors stay
    /// small).
    pub fn add(&self, other: &RlweCiphertext) -> RlweCiphertext {
        RlweCiphertext {
            c0: &self.c0 + &other.c0,
            c1: &self.c1 + &other.c1,
        }
    }
}

impl RlweSecretKey {
    /// Samples a ternary secret.
    pub fn generate<R: Rng + ?Sized>(ring: &RingContext, rng: &mut R) -> RlweSecretKey {
        RlweSecretKey {
            s: ring.random_ternary(rng),
        }
    }

    /// Encrypts a bit vector (one bit per coefficient).
    ///
    /// # Panics
    ///
    /// Panics if `message.len()` differs from the ring dimension.
    pub fn encrypt<R: Rng + ?Sized>(&self, message: &[bool], rng: &mut R) -> RlweCiphertext {
        let ring = self.s.context();
        assert_eq!(message.len(), ring.dimension(), "one bit per coefficient");
        let a = ring.random(rng);
        let e = ring.random_ternary(rng);
        let delta = Fp::new(P / 2);
        let encoded: Vec<Fp> = message
            .iter()
            .map(|&m| if m { delta } else { Fp::ZERO })
            .collect();
        let encoded = ring.element_from(&encoded);
        let c0 = &(&(&a * &self.s) + &e) + &encoded;
        RlweCiphertext { c0, c1: -a }
    }

    /// Decrypts to the bit vector.
    pub fn decrypt(&self, ct: &RlweCiphertext) -> Vec<bool> {
        let v = &ct.c0 + &(&ct.c1 * &self.s);
        v.coeffs()
            .iter()
            .map(|c| {
                let x = c.as_u64();
                x.min(P - x) > P / 4
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let ring = RingContext::new(256).unwrap();
        let sk = RlweSecretKey::generate(&ring, &mut rng);
        let message: Vec<bool> = (0..256).map(|i| i % 3 == 0).collect();
        let ct = sk.encrypt(&message, &mut rng);
        assert_eq!(sk.decrypt(&ct), message);
    }

    #[test]
    fn homomorphic_addition_xors_bits() {
        let mut rng = StdRng::seed_from_u64(11);
        let ring = RingContext::new(128).unwrap();
        let sk = RlweSecretKey::generate(&ring, &mut rng);
        let a: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..128).map(|i| i % 5 == 0).collect();
        let sum = sk.encrypt(&a, &mut rng).add(&sk.encrypt(&b, &mut rng));
        let expected: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(sk.decrypt(&sum), expected);
    }

    #[test]
    fn wrong_key_garbles() {
        let mut rng = StdRng::seed_from_u64(12);
        let ring = RingContext::new(128).unwrap();
        let sk = RlweSecretKey::generate(&ring, &mut rng);
        let other = RlweSecretKey::generate(&ring, &mut rng);
        let message: Vec<bool> = (0..128).map(|i| i % 7 == 0).collect();
        let ct = sk.encrypt(&message, &mut rng);
        assert_ne!(other.decrypt(&ct), message);
    }

    #[test]
    #[should_panic(expected = "one bit per coefficient")]
    fn wrong_message_length_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let ring = RingContext::new(64).unwrap();
        let sk = RlweSecretKey::generate(&ring, &mut rng);
        let _ = sk.encrypt(&[true; 32], &mut rng);
    }
}
