//! Dense polynomial and quotient-ring arithmetic over `F_p`,
//! `p = 2^64 − 2^32 + 1`.
//!
//! Section III of the paper observes that its multiplier serves not only
//! the integer-based FHE schemes but also "solutions based on Lattice
//! problems and Learning with Errors, which may thus be implemented on top
//! of the accelerator". Those schemes compute in polynomial rings; this
//! crate provides that layer:
//!
//! * [`Poly`] — dense polynomials over `F_p` with NTT-backed
//!   multiplication (the accelerator's transforms);
//! * [`RingElement`] — arithmetic in `R = F_p[X]/(X^n + 1)`, the standard
//!   RLWE ring, with negacyclic NTT products;
//! * [`rlwe`] — a compact RLWE symmetric encryption scheme built on the
//!   ring, exercising the full path.
//!
//! # Example
//!
//! ```
//! use he_field::Fp;
//! use he_poly::Poly;
//!
//! let a = Poly::from_coeffs(vec![Fp::ONE, Fp::ONE]); // 1 + X
//! let b = Poly::from_coeffs(vec![Fp::ONE, -Fp::ONE]); // 1 − X
//! let product = &a * &b; // 1 − X²
//! assert_eq!(product, Poly::from_coeffs(vec![Fp::ONE, Fp::ZERO, -Fp::ONE]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod poly;
mod ring;
pub mod rlwe;

pub use poly::Poly;
pub use ring::{RingContext, RingElement};
