//! Dense polynomials over `F_p`.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};

use he_field::Fp;
use he_ntt::{convolution, naive, Radix2Plan};

/// Coefficient count above which multiplication switches from schoolbook
/// to NTT convolution.
const NTT_MUL_THRESHOLD: usize = 64;

/// A dense polynomial over `F_p`, little-endian coefficients, normalized
/// (no trailing zero coefficients; zero is the empty vector).
///
/// ```
/// use he_field::Fp;
/// use he_poly::Poly;
///
/// let p = Poly::from_coeffs(vec![Fp::new(3), Fp::ZERO, Fp::ONE]); // 3 + X²
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.evaluate(Fp::new(2)), Fp::new(7));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Fp>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// The constant polynomial `1`.
    pub fn one() -> Poly {
        Poly {
            coeffs: vec![Fp::ONE],
        }
    }

    /// The monomial `X^k`.
    pub fn monomial(k: usize) -> Poly {
        let mut coeffs = vec![Fp::ZERO; k + 1];
        coeffs[k] = Fp::ONE;
        Poly { coeffs }
    }

    /// Builds from little-endian coefficients, trimming trailing zeros.
    pub fn from_coeffs(mut coeffs: Vec<Fp>) -> Poly {
        while coeffs.last() == Some(&Fp::ZERO) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// A uniformly random polynomial of degree `< n`.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R, n: usize) -> Poly {
        Poly::from_coeffs((0..n).map(|_| Fp::new(rng.gen())).collect())
    }

    /// The coefficients (little-endian, no trailing zeros).
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// The coefficient of `X^k` (zero beyond the degree).
    pub fn coeff(&self, k: usize) -> Fp {
        self.coeffs.get(k).copied().unwrap_or(Fp::ZERO)
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Horner evaluation at `x`.
    pub fn evaluate(&self, x: Fp) -> Fp {
        self.coeffs
            .iter()
            .rev()
            .fold(Fp::ZERO, |acc, &c| acc * x + c)
    }

    /// Schoolbook multiplication (quadratic; reference and small-degree
    /// path).
    pub fn mul_schoolbook(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Fp::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::from_coeffs(out)
    }

    /// NTT-backed multiplication: zero-pad to a power of two covering the
    /// product and convolve — the accelerator's dataflow.
    pub fn mul_ntt(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let product_len = self.coeffs.len() + other.coeffs.len() - 1;
        let n = product_len.next_power_of_two().max(2);
        let pad = |p: &Poly| {
            let mut v = p.coeffs.clone();
            v.resize(n, Fp::ZERO);
            v
        };
        let plan = Radix2Plan::new(n).expect("power of two within field 2-adicity");
        let fa = plan.forward(&pad(self));
        let fb = plan.forward(&pad(other));
        Poly::from_coeffs(plan.inverse(&convolution::pointwise(&fa, &fb)))
    }

    /// Cyclic product: `self·other mod (X^n − 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands have fewer than `n + 1` coefficients
    /// and `n` is a supported power of two.
    pub fn mul_mod_xn_minus_1(&self, other: &Poly, n: usize) -> Poly {
        assert!(self.coeffs.len() <= n && other.coeffs.len() <= n);
        let pad = |p: &Poly| {
            let mut v = p.coeffs.clone();
            v.resize(n, Fp::ZERO);
            v
        };
        Poly::from_coeffs(naive::cyclic_convolve(&pad(self), &pad(other)))
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(deg {} [", self.coeffs.len() - 1)?;
        for (i, c) in self.coeffs.iter().take(4).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        if self.coeffs.len() > 4 {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

impl Add<&Poly> for &Poly {
    type Output = Poly;

    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::from_coeffs((0..n).map(|i| self.coeff(i) + rhs.coeff(i)).collect())
    }
}

impl Add for Poly {
    type Output = Poly;

    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        *self = &*self + rhs;
    }
}

impl Sub<&Poly> for &Poly {
    type Output = Poly;

    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::from_coeffs((0..n).map(|i| self.coeff(i) - rhs.coeff(i)).collect())
    }
}

impl Sub for Poly {
    type Output = Poly;

    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl Neg for &Poly {
    type Output = Poly;

    fn neg(self) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| -c).collect())
    }
}

impl Neg for Poly {
    type Output = Poly;

    fn neg(self) -> Poly {
        -&self
    }
}

impl Mul<&Poly> for &Poly {
    type Output = Poly;

    fn mul(self, rhs: &Poly) -> Poly {
        if self.coeffs.len().min(rhs.coeffs.len()) < NTT_MUL_THRESHOLD {
            self.mul_schoolbook(rhs)
        } else {
            self.mul_ntt(rhs)
        }
    }
}

impl Mul for Poly {
    type Output = Poly;

    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl Mul<Fp> for &Poly {
    type Output = Poly;

    fn mul(self, rhs: Fp) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * rhs).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_and_normalization() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(Poly::monomial(5).degree(), Some(5));
        assert_eq!(
            Poly::from_coeffs(vec![Fp::ONE, Fp::ZERO, Fp::ZERO]),
            Poly::from_coeffs(vec![Fp::ONE])
        );
        assert_eq!(Poly::from_coeffs(vec![Fp::ZERO; 4]), Poly::zero());
    }

    #[test]
    fn evaluation() {
        // (X + 1)(X + 2) = X² + 3X + 2 at x = 5 → 42.
        let p = Poly::from_coeffs(vec![Fp::new(2), Fp::new(3), Fp::ONE]);
        assert_eq!(p.evaluate(Fp::new(5)), Fp::new(42));
        assert_eq!(Poly::zero().evaluate(Fp::new(9)), Fp::ZERO);
    }

    #[test]
    fn ntt_mul_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(7);
        for (da, db) in [(1usize, 1), (5, 9), (63, 65), (200, 300), (511, 513)] {
            let a = Poly::random(&mut rng, da);
            let b = Poly::random(&mut rng, db);
            assert_eq!(a.mul_ntt(&b), a.mul_schoolbook(&b), "{da}x{db}");
            assert_eq!(&a * &b, a.mul_schoolbook(&b), "{da}x{db} dispatch");
        }
    }

    #[test]
    fn ring_axioms_spot_checks() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Poly::random(&mut rng, 40);
        let b = Poly::random(&mut rng, 30);
        let c = Poly::random(&mut rng, 35);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a + &b) * &c, &(&a * &c) + &(&b * &c));
        assert_eq!(&(&a - &a) * &b, Poly::zero());
        assert_eq!(&a * &Poly::one(), a.clone());
    }

    #[test]
    fn evaluation_is_a_homomorphism() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Poly::random(&mut rng, 20);
        let b = Poly::random(&mut rng, 25);
        let x = Fp::new(0xabcdef);
        assert_eq!((&a * &b).evaluate(x), a.evaluate(x) * b.evaluate(x));
        assert_eq!((&a + &b).evaluate(x), a.evaluate(x) + b.evaluate(x));
    }

    #[test]
    fn cyclic_product_wraps() {
        // X·X^{n−1} ≡ 1 (mod X^n − 1).
        let n = 8;
        let product = Poly::monomial(1).mul_mod_xn_minus_1(&Poly::monomial(n - 1), n);
        assert_eq!(product, Poly::one());
    }

    #[test]
    fn scalar_multiplication() {
        let p = Poly::from_coeffs(vec![Fp::ONE, Fp::new(2)]);
        assert_eq!(
            &p * Fp::new(3),
            Poly::from_coeffs(vec![Fp::new(3), Fp::new(6)])
        );
        assert_eq!(&p * Fp::ZERO, Poly::zero());
    }

    #[test]
    fn debug_is_compact() {
        let p = Poly::random(&mut StdRng::seed_from_u64(1), 100);
        let s = format!("{p:?}");
        assert!(s.contains("deg 99"));
        assert!(s.len() < 200);
    }
}
