//! Stress tests for Knuth Algorithm D: inputs engineered around the
//! quotient-digit estimation corrections.

use he_bigint::UBig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check(a: &UBig, b: &UBig) {
    let (q, r) = a.div_rem(b);
    assert!(r < *b, "remainder bound: {a:?} / {b:?}");
    assert_eq!(&(&q * b) + &r, *a, "reconstruction: {a:?} / {b:?}");
}

#[test]
fn qhat_overestimate_patterns() {
    // Divisors with top limb 0x8000…: the classic q̂ = B − 1 overestimate.
    let v = UBig::from_limbs(vec![1, 0x8000_0000_0000_0000]);
    for hi in [0x7fff_ffff_ffff_ffffu64, 0x8000_0000_0000_0000, u64::MAX] {
        let u = UBig::from_limbs(vec![u64::MAX, u64::MAX, hi]);
        check(&u, &v);
    }
}

#[test]
fn all_ones_dividends_and_divisors() {
    for (ul, vl) in [(5usize, 2usize), (8, 3), (12, 11), (16, 4)] {
        let u = UBig::from_limbs(vec![u64::MAX; ul]);
        let v = UBig::from_limbs(vec![u64::MAX; vl]);
        check(&u, &v);
    }
}

#[test]
fn divisor_one_limb_larger_than_half() {
    // Remainders hugging the divisor from below.
    let mut rng = StdRng::seed_from_u64(500);
    for _ in 0..50 {
        let v = UBig::random_bits(&mut rng, 192);
        let q = UBig::random_bits(&mut rng, 128);
        // u = q·v + (v − 1): the largest legal remainder.
        let u = &(&q * &v) + &(&v - &UBig::one());
        let (q2, r2) = u.div_rem(&v);
        assert_eq!(q2, q);
        assert_eq!(r2, &v - &UBig::one());
    }
}

#[test]
fn quotients_of_one_and_zero() {
    let mut rng = StdRng::seed_from_u64(501);
    let v = UBig::random_bits(&mut rng, 1000);
    // u = v: quotient 1, remainder 0.
    let (q, r) = v.div_rem(&v);
    assert!(q.is_one());
    assert!(r.is_zero());
    // u = v − 1: quotient 0.
    let u = &v - &UBig::one();
    let (q, r) = u.div_rem(&v);
    assert!(q.is_zero());
    assert_eq!(r, u);
    // u = v + 1: quotient 1, remainder 1.
    let u = &v + &UBig::one();
    let (q, r) = u.div_rem(&v);
    assert!(q.is_one());
    assert!(r.is_one());
}

#[test]
fn power_of_two_divisors_match_shifts() {
    let mut rng = StdRng::seed_from_u64(502);
    let u = UBig::random_bits(&mut rng, 5000);
    for k in [1usize, 63, 64, 65, 127, 1000] {
        let (q, r) = u.div_rem(&UBig::pow2(k));
        assert_eq!(q, &u >> k, "k = {k}");
        assert_eq!(&(&q << k) + &r, u, "k = {k}");
    }
}

#[test]
fn paper_scale_division() {
    // DGHV decryption divides a 1.57M-bit product by a 1558-bit secret.
    let mut rng = StdRng::seed_from_u64(503);
    let c = UBig::random_bits(&mut rng, 1_572_864);
    let p = UBig::random_bits(&mut rng, 1_558);
    check(&c, &p);
}
