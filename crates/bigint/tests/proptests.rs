//! Property-based tests for the big-integer substrate: ring axioms,
//! division reconstruction, algorithm agreement, string round-trips.

use he_bigint::{BarrettReducer, IBig, UBig};
use proptest::prelude::*;

fn arb_ubig(max_limbs: usize) -> impl Strategy<Value = UBig> {
    proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(UBig::from_limbs)
}

fn arb_ibig() -> impl Strategy<Value = IBig> {
    (any::<bool>(), arb_ubig(6)).prop_map(|(neg, mag)| IBig::from_sign_magnitude(neg, mag))
}

proptest! {
    #[test]
    fn add_commutative(a in arb_ubig(8), b in arb_ubig(8)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in arb_ubig(8), b in arb_ubig(8), c in arb_ubig(8)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_then_sub_roundtrips(a in arb_ubig(8), b in arb_ubig(8)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutative(a in arb_ubig(6), b in arb_ubig(6)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in arb_ubig(5), b in arb_ubig(5), c in arb_ubig(5)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn karatsuba_matches_schoolbook(a in arb_ubig(40), b in arb_ubig(40)) {
        prop_assert_eq!(a.mul_karatsuba(&b), a.mul_schoolbook(&b));
    }

    #[test]
    fn u128_agreement(a in any::<u64>(), b in any::<u64>()) {
        let product = UBig::from(a) * UBig::from(b);
        prop_assert_eq!(product, UBig::from(a as u128 * b as u128));
    }

    #[test]
    fn shift_is_pow2_mul(a in arb_ubig(6), s in 0usize..300) {
        prop_assert_eq!(&a << s, &a * &UBig::pow2(s));
    }

    #[test]
    fn shr_then_shl_clears_low_bits(a in arb_ubig(6), s in 0usize..200) {
        let masked = &(&a >> s) << s;
        prop_assert!(masked <= a);
        let diff = &a - &masked;
        prop_assert!(diff < UBig::pow2(s.max(1)));
    }

    #[test]
    fn div_rem_reconstructs(a in arb_ubig(12), b in arb_ubig(6)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn barrett_matches_rem(a in arb_ubig(12), b in arb_ubig(6)) {
        prop_assume!(!b.is_zero());
        let reducer = BarrettReducer::new(b.clone()).unwrap();
        prop_assert_eq!(reducer.reduce(&a), a.rem_euclid(&b));
    }

    #[test]
    fn gcd_divides_both(a in arb_ubig(4), b in arb_ubig(4)) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(a.rem_euclid(&g).is_zero());
        prop_assert!(b.rem_euclid(&g).is_zero());
    }

    #[test]
    fn hex_roundtrip(a in arb_ubig(8)) {
        prop_assert_eq!(UBig::from_hex(&format!("{a:x}")).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in arb_ubig(4)) {
        prop_assert_eq!(a.to_string().parse::<UBig>().unwrap(), a);
    }

    #[test]
    fn le_bytes_roundtrip(a in arb_ubig(8)) {
        prop_assert_eq!(UBig::from_le_bytes(&a.to_le_bytes()), a);
    }

    #[test]
    fn bits_at_reassembles(a in arb_ubig(6), m in 1u32..=32) {
        // Decompose into m-bit digits and reassemble: the SSA front-end
        // round-trip at the bigint level.
        let bits = a.bit_len();
        let digits = bits.div_ceil(m as usize).max(1);
        let mut acc = UBig::zero();
        for i in (0..digits).rev() {
            acc = (&acc << (m as usize)) + &UBig::from(a.bits_at(i * m as usize, m));
        }
        prop_assert_eq!(acc, a);
    }

    #[test]
    fn ibig_ring_ops(a in arb_ibig(), b in arb_ibig(), c in arb_ibig()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a - &b) + &b, a.clone());
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn ibig_sign_of_product(a in arb_ibig(), b in arb_ibig()) {
        let p = &a * &b;
        if a.is_zero() || b.is_zero() {
            prop_assert!(p.is_zero());
        } else {
            prop_assert_eq!(p.is_negative(), a.is_negative() != b.is_negative());
        }
    }

    #[test]
    fn cmp_consistent_with_sub(a in arb_ubig(6), b in arb_ubig(6)) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(b.checked_sub(&a).is_ok() && a.checked_sub(&b).is_err()),
            _ => prop_assert!(a.checked_sub(&b).is_ok()),
        }
    }
}

#[test]
fn toom3_matches_schoolbook_large() {
    // One deterministic large case above the Toom-3 threshold (proptest
    // cases stay smaller for speed).
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(77);
    let a = UBig::random_bits(&mut rng, 64 * 300);
    let b = UBig::random_bits(&mut rng, 64 * 280);
    assert_eq!(a.mul_toom3(&b), a.mul_schoolbook(&b));
}
