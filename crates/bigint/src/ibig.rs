//! A minimal signed big integer (sign + magnitude).
//!
//! Used internally by Toom-3 interpolation and publicly by DGHV's centered
//! remainders. Deliberately small: only the operations those callers need.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Mul, Neg, Shl, Sub};

use crate::ubig::UBig;

/// A signed arbitrary-precision integer.
///
/// Zero is always stored with a positive sign.
///
/// ```
/// use he_bigint::{IBig, UBig};
///
/// let a = IBig::from(UBig::from(3u64));
/// let b = IBig::from(UBig::from(5u64));
/// let d = &a - &b; // −2
/// assert!(d.is_negative());
/// assert_eq!((&d + &b).into_ubig().unwrap(), UBig::from(3u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IBig {
    negative: bool,
    magnitude: UBig,
}

impl IBig {
    /// The value zero.
    pub fn zero() -> IBig {
        IBig::default()
    }

    /// Creates a value from a sign and magnitude (zero is normalized to
    /// non-negative).
    pub fn from_sign_magnitude(negative: bool, magnitude: UBig) -> IBig {
        IBig {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// Whether the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// The absolute value.
    #[inline]
    pub fn magnitude(&self) -> &UBig {
        &self.magnitude
    }

    /// Converts to [`UBig`] if non-negative; returns the original value
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the value is negative.
    pub fn into_ubig(self) -> Result<UBig, IBig> {
        if self.negative {
            Err(self)
        } else {
            Ok(self.magnitude)
        }
    }

    /// Exact division by a small positive constant.
    ///
    /// # Panics
    ///
    /// Panics if the division leaves a remainder or `d == 0` (Toom-3
    /// interpolation divides exactly by 2 and 3).
    pub fn div_exact_small(&self, d: u64) -> IBig {
        let (q, r) = self.magnitude.div_rem_small(d);
        assert_eq!(r, 0, "div_exact_small: non-exact division by {d}");
        IBig::from_sign_magnitude(self.negative, q)
    }
}

impl From<UBig> for IBig {
    fn from(value: UBig) -> IBig {
        IBig {
            negative: false,
            magnitude: value,
        }
    }
}

impl From<i64> for IBig {
    fn from(value: i64) -> IBig {
        IBig::from_sign_magnitude(value < 0, UBig::from(value.unsigned_abs()))
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &IBig) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &IBig) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl Neg for IBig {
    type Output = IBig;

    fn neg(self) -> IBig {
        IBig::from_sign_magnitude(!self.negative, self.magnitude)
    }
}

impl Neg for &IBig {
    type Output = IBig;

    fn neg(self) -> IBig {
        -self.clone()
    }
}

impl Add<&IBig> for &IBig {
    type Output = IBig;

    fn add(self, rhs: &IBig) -> IBig {
        if self.negative == rhs.negative {
            IBig::from_sign_magnitude(self.negative, &self.magnitude + &rhs.magnitude)
        } else {
            match self.magnitude.cmp(&rhs.magnitude) {
                Ordering::Equal => IBig::zero(),
                Ordering::Greater => {
                    IBig::from_sign_magnitude(self.negative, &self.magnitude - &rhs.magnitude)
                }
                Ordering::Less => {
                    IBig::from_sign_magnitude(rhs.negative, &rhs.magnitude - &self.magnitude)
                }
            }
        }
    }
}

impl Add for IBig {
    type Output = IBig;

    fn add(self, rhs: IBig) -> IBig {
        &self + &rhs
    }
}

impl Sub<&IBig> for &IBig {
    type Output = IBig;

    fn sub(self, rhs: &IBig) -> IBig {
        self + &(-rhs)
    }
}

impl Sub for IBig {
    type Output = IBig;

    fn sub(self, rhs: IBig) -> IBig {
        &self - &rhs
    }
}

impl Mul<&IBig> for &IBig {
    type Output = IBig;

    fn mul(self, rhs: &IBig) -> IBig {
        IBig::from_sign_magnitude(
            self.negative != rhs.negative,
            &self.magnitude * &rhs.magnitude,
        )
    }
}

impl Mul for IBig {
    type Output = IBig;

    fn mul(self, rhs: IBig) -> IBig {
        &self * &rhs
    }
}

impl Shl<usize> for &IBig {
    type Output = IBig;

    fn shl(self, shift: usize) -> IBig {
        IBig::from_sign_magnitude(self.negative, &self.magnitude << shift)
    }
}

impl Shl<usize> for IBig {
    type Output = IBig;

    fn shl(self, shift: usize) -> IBig {
        &self << shift
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBig({self})")
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        fmt::Display::fmt(&self.magnitude, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib(v: i64) -> IBig {
        IBig::from(v)
    }

    #[test]
    fn zero_is_positive() {
        assert!(!IBig::from_sign_magnitude(true, UBig::zero()).is_negative());
        assert_eq!(ib(0), IBig::zero());
        assert_eq!(-IBig::zero(), IBig::zero());
    }

    #[test]
    fn signed_addition_table() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                let got = &ib(a) + &ib(b);
                assert_eq!(got, ib(a + b), "{a} + {b}");
                let got = &ib(a) - &ib(b);
                assert_eq!(got, ib(a - b), "{a} - {b}");
                let got = &ib(a) * &ib(b);
                assert_eq!(got, ib(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn ordering() {
        assert!(ib(-3) < ib(-2));
        assert!(ib(-1) < ib(0));
        assert!(ib(0) < ib(1));
        assert!(ib(2) > ib(-100));
    }

    #[test]
    fn div_exact() {
        assert_eq!(ib(-9).div_exact_small(3), ib(-3));
        assert_eq!(ib(8).div_exact_small(2), ib(4));
    }

    #[test]
    #[should_panic(expected = "non-exact")]
    fn div_exact_rejects_remainder() {
        let _ = ib(7).div_exact_small(2);
    }

    #[test]
    fn into_ubig() {
        assert_eq!(ib(5).into_ubig().unwrap(), UBig::from(5u64));
        assert!(ib(-5).into_ubig().is_err());
    }

    #[test]
    fn shift_preserves_sign() {
        assert_eq!(&ib(-3) << 2, ib(-12));
    }

    #[test]
    fn display() {
        assert_eq!(ib(-42).to_string(), "-42");
        assert_eq!(ib(42).to_string(), "42");
        assert_eq!(format!("{:?}", ib(-1)), "IBig(-1)");
    }
}
