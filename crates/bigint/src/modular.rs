//! Modular exponentiation and inversion.
//!
//! DGHV-style schemes and their parameter tooling need `a^e mod m` (for
//! primality/subgroup checks) and modular inverses (for CRT-based variants
//! like the batched scheme of \[22\]); both are provided here on top of the
//! Barrett reducer.

use crate::barrett::BarrettReducer;
use crate::ibig::IBig;
use crate::ubig::UBig;
use crate::ArithmeticError;

impl UBig {
    /// Computes `self^exp mod modulus` by square-and-multiply with Barrett
    /// reduction.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticError::DivisionByZero`] if `modulus` is zero.
    ///
    /// ```
    /// use he_bigint::UBig;
    /// // 2^10 mod 1000 = 24
    /// let r = UBig::from(2u64).mod_pow(&UBig::from(10u64), &UBig::from(1000u64))?;
    /// assert_eq!(r, UBig::from(24u64));
    /// # Ok::<(), he_bigint::ArithmeticError>(())
    /// ```
    pub fn mod_pow(&self, exp: &UBig, modulus: &UBig) -> Result<UBig, ArithmeticError> {
        let reducer = BarrettReducer::new(modulus.clone())?;
        if modulus.is_one() {
            return Ok(UBig::zero());
        }
        let mut base = reducer.reduce(self);
        let mut acc = UBig::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = reducer.reduce(&(&acc * &base));
            }
            if i + 1 < exp.bit_len() {
                base = reducer.reduce(&(&base * &base));
            }
        }
        Ok(acc)
    }

    /// Computes the multiplicative inverse of `self` modulo `modulus` by
    /// the extended Euclidean algorithm, or `None` if
    /// `gcd(self, modulus) ≠ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero or one.
    ///
    /// ```
    /// use he_bigint::UBig;
    /// let inv = UBig::from(3u64).mod_inverse(&UBig::from(7u64)).unwrap();
    /// assert_eq!(inv, UBig::from(5u64)); // 3·5 = 15 ≡ 1 (mod 7)
    /// ```
    pub fn mod_inverse(&self, modulus: &UBig) -> Option<UBig> {
        assert!(
            !modulus.is_zero() && !modulus.is_one(),
            "modulus must be at least 2"
        );
        let a = self.rem_euclid(modulus);
        if a.is_zero() {
            return None;
        }
        // Extended Euclid on (r0, r1) with Bézout coefficient for `a`.
        let mut r0 = modulus.clone();
        let mut r1 = a;
        let mut t0 = IBig::zero();
        let mut t1 = IBig::from(UBig::one());
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            let t2 = &t0 - &(&IBig::from(q) * &t1);
            r0 = core::mem::replace(&mut r1, r);
            t0 = core::mem::replace(&mut t1, t2);
        }
        if !r0.is_one() {
            return None; // not coprime
        }
        // Normalize the Bézout coefficient into [0, modulus).
        let result = if t0.is_negative() {
            modulus - &t0.magnitude().rem_euclid(modulus)
        } else {
            t0.magnitude().rem_euclid(modulus)
        };
        Some(result.rem_euclid(modulus))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_pow_small_cases() {
        let m = UBig::from(1000u64);
        assert_eq!(
            UBig::from(2u64).mod_pow(&UBig::from(10u64), &m).unwrap(),
            UBig::from(24u64)
        );
        assert_eq!(
            UBig::from(5u64).mod_pow(&UBig::zero(), &m).unwrap(),
            UBig::one()
        );
        assert_eq!(
            UBig::from(7u64).mod_pow(&UBig::one(), &m).unwrap(),
            UBig::from(7u64)
        );
        // modulus one: everything is zero
        assert_eq!(
            UBig::from(7u64)
                .mod_pow(&UBig::from(5u64), &UBig::one())
                .unwrap(),
            UBig::zero()
        );
    }

    #[test]
    fn mod_pow_zero_modulus_errors() {
        assert_eq!(
            UBig::from(2u64).mod_pow(&UBig::one(), &UBig::zero()),
            Err(ArithmeticError::DivisionByZero)
        );
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p−1) ≡ 1 mod p for prime p = 2^64 − 2^32 + 1.
        let p = UBig::from(0xFFFF_FFFF_0000_0001u64);
        let p_minus_1 = &p - &UBig::one();
        for a in [2u64, 3, 7, 0xdead_beef] {
            assert_eq!(
                UBig::from(a).mod_pow(&p_minus_1, &p).unwrap(),
                UBig::one(),
                "a = {a}"
            );
        }
    }

    #[test]
    fn mod_pow_large_random_consistency() {
        // (a^e1)·(a^e2) ≡ a^(e1+e2)
        let mut rng = StdRng::seed_from_u64(60);
        let m = UBig::random_bits(&mut rng, 500);
        let a = UBig::random_bits(&mut rng, 400);
        let e1 = UBig::from(123u64);
        let e2 = UBig::from(456u64);
        let lhs = (&a.mod_pow(&e1, &m).unwrap() * &a.mod_pow(&e2, &m).unwrap()).rem_euclid(&m);
        let rhs = a.mod_pow(&(&e1 + &e2), &m).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_basics() {
        assert_eq!(
            UBig::from(3u64).mod_inverse(&UBig::from(7u64)),
            Some(UBig::from(5u64))
        );
        // Non-coprime: no inverse.
        assert_eq!(UBig::from(6u64).mod_inverse(&UBig::from(9u64)), None);
        // Zero: no inverse.
        assert_eq!(UBig::zero().mod_inverse(&UBig::from(7u64)), None);
    }

    #[test]
    fn mod_inverse_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(61);
        // Odd modulus, odd value: usually coprime; verify a·a⁻¹ ≡ 1.
        for _ in 0..10 {
            let mut m = UBig::random_bits(&mut rng, 300);
            m.set_bit(0, true);
            let mut a = UBig::random_bits(&mut rng, 250);
            a.set_bit(0, true);
            if let Some(inv) = a.mod_inverse(&m) {
                assert_eq!((&a * &inv).rem_euclid(&m), UBig::one());
                assert!(inv < m);
            }
        }
    }

    #[test]
    fn mod_inverse_against_fermat_for_prime_modulus() {
        let p = UBig::from(0xFFFF_FFFF_0000_0001u64);
        let p_minus_2 = &p - &UBig::from(2u64);
        for a in [2u64, 8, 12345] {
            let via_egcd = UBig::from(a).mod_inverse(&p).unwrap();
            let via_fermat = UBig::from(a).mod_pow(&p_minus_2, &p).unwrap();
            assert_eq!(via_egcd, via_fermat, "a = {a}");
        }
    }
}
