//! String conversions for [`UBig`].

use core::fmt;
use core::str::FromStr;

use crate::ubig::UBig;

/// Error parsing a [`UBig`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUBigError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseUBigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer"),
        }
    }
}

impl std::error::Error for ParseUBigError {}

impl UBig {
    /// Parses a hexadecimal string; `_` separators and a leading `0x` are
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUBigError`] on an empty string or non-hex digit.
    ///
    /// ```
    /// use he_bigint::UBig;
    /// let x = UBig::from_hex("0xdead_beef")?;
    /// assert_eq!(x, UBig::from(0xdead_beef_u64));
    /// # Ok::<(), he_bigint::ParseUBigError>(())
    /// ```
    pub fn from_hex(s: &str) -> Result<UBig, ParseUBigError> {
        let s = s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .unwrap_or(s);
        let digits: Vec<u8> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| {
                c.to_digit(16).map(|d| d as u8).ok_or(ParseUBigError {
                    kind: ParseErrorKind::InvalidDigit(c),
                })
            })
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err(ParseUBigError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs = vec![0u64; digits.len().div_ceil(16)];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (d as u64) << (4 * (i % 16));
        }
        Ok(UBig::from_limbs(limbs))
    }

    /// Parses a decimal string; `_` separators are accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ParseUBigError`] on an empty string or non-decimal digit.
    pub fn from_decimal(s: &str) -> Result<UBig, ParseUBigError> {
        let mut acc = UBig::zero();
        let mut seen = false;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseUBigError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = &acc * 10u64 + &UBig::from(d as u64);
            seen = true;
        }
        if !seen {
            return Err(ParseUBigError {
                kind: ParseErrorKind::Empty,
            });
        }
        Ok(acc)
    }
}

impl FromStr for UBig {
    type Err = ParseUBigError;

    /// Parses decimal by default, hexadecimal with a `0x` prefix.
    fn from_str(s: &str) -> Result<UBig, ParseUBigError> {
        if s.starts_with("0x") || s.starts_with("0X") {
            UBig::from_hex(s)
        } else {
            UBig::from_decimal(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = UBig::from_hex(s).unwrap();
            assert_eq!(UBig::from_hex(&format!("{v:x}")).unwrap(), v, "input {s}");
        }
        assert_eq!(format!("{:x}", UBig::from_hex("00ff").unwrap()), "ff");
    }

    #[test]
    fn hex_prefix_and_separators() {
        assert_eq!(
            UBig::from_hex("0xdead_beef").unwrap(),
            UBig::from(0xdead_beefu64)
        );
        assert_eq!(UBig::from_hex("0X00FF").unwrap(), UBig::from(255u64));
    }

    #[test]
    fn decimal_parse() {
        assert_eq!(UBig::from_decimal("0").unwrap(), UBig::zero());
        assert_eq!(
            UBig::from_decimal("18446744073709551616").unwrap(),
            UBig::pow2(64)
        );
        assert_eq!(
            UBig::from_decimal("1_000_000").unwrap(),
            UBig::from(1_000_000u64)
        );
    }

    #[test]
    fn from_str_dispatch() {
        assert_eq!("0xff".parse::<UBig>().unwrap(), UBig::from(255u64));
        assert_eq!("255".parse::<UBig>().unwrap(), UBig::from(255u64));
    }

    #[test]
    fn errors() {
        assert!(UBig::from_hex("").is_err());
        assert!(UBig::from_hex("0x").is_err());
        assert!(UBig::from_hex("xyz").is_err());
        assert!(UBig::from_decimal("12a").is_err());
        assert!(UBig::from_decimal("").is_err());
        let e = UBig::from_decimal("1 2").unwrap_err();
        assert!(e.to_string().contains("invalid digit"));
    }

    #[test]
    fn display_parse_roundtrip() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(55);
        let v = UBig::random_bits(&mut rng, 700);
        assert_eq!(v.to_string().parse::<UBig>().unwrap(), v);
        assert_eq!(UBig::from_hex(&format!("{v:x}")).unwrap(), v);
    }
}
