//! Long division: Knuth's Algorithm D.

use core::ops::{Div, DivAssign, Rem, RemAssign};

use crate::ubig::UBig;

impl UBig {
    /// Divides, returning `(quotient, remainder)`.
    ///
    /// Implements Knuth TAOCP vol. 2, Algorithm 4.3.1 D with 64-bit limbs.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use he_bigint::UBig;
    /// let (q, r) = UBig::from(1_000_000u64).div_rem(&UBig::from(997u64));
    /// assert_eq!(q, UBig::from(1003u64));
    /// assert_eq!(r, UBig::from(9u64));
    /// ```
    pub fn div_rem(&self, divisor: &UBig) -> (UBig, UBig) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (UBig::zero(), self.clone());
        }
        if divisor.as_limbs().len() == 1 {
            let (q, r) = self.div_rem_small(divisor.as_limbs()[0]);
            return (q, UBig::from(r));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.as_limbs().last().unwrap().leading_zeros() as usize;
        let v = (divisor << shift).into_limbs();
        let n = v.len();
        let mut u = (self << shift).into_limbs();
        // Ensure an extra high limb for the first quotient digit estimate.
        u.push(0);
        let m = u.len() - n - 1;

        let mut q = vec![0u64; m + 1];
        let b = 1u128 << 64;

        for j in (0..=m).rev() {
            // Estimate q̂ = (u[j+n]·b + u[j+n−1]) / v[n−1].
            let numerator = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numerator / v[n - 1] as u128;
            let mut rhat = numerator % v[n - 1] as u128;

            while qhat >= b || qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v[n - 1] as u128;
                if rhat >= b {
                    break;
                }
            }

            // Multiply-and-subtract: u[j..j+n+1] −= q̂ · v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * v[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or −1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow != 0 {
                // q̂ was one too large: add v back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + v[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let remainder = UBig::from_limbs(u[..n].to_vec()) >> shift;
        (UBig::from_limbs(q), remainder)
    }

    /// Divides by a 64-bit divisor, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_small(&self, divisor: u64) -> (UBig, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.as_limbs().len()];
        let mut rem = 0u128;
        for (i, &l) in self.as_limbs().iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (UBig::from_limbs(out), rem as u64)
    }

    /// `self mod divisor` (convenience wrapper over [`UBig::div_rem`]).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn rem_euclid(&self, divisor: &UBig) -> UBig {
        self.div_rem(divisor).1
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &UBig) -> UBig {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a >>= az;
        b >>= bz;
        loop {
            if a > b {
                core::mem::swap(&mut a, &mut b);
            }
            b -= &a; // b ≥ a, both odd → b−a even
            if b.is_zero() {
                return a << common;
            }
            b >>= b.trailing_zeros().unwrap();
        }
    }
}

impl Div<&UBig> for &UBig {
    type Output = UBig;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).0
    }
}

impl Div for UBig {
    type Output = UBig;

    fn div(self, rhs: UBig) -> UBig {
        &self / &rhs
    }
}

impl Div<&UBig> for UBig {
    type Output = UBig;

    fn div(self, rhs: &UBig) -> UBig {
        &self / rhs
    }
}

impl DivAssign<&UBig> for UBig {
    fn div_assign(&mut self, rhs: &UBig) {
        *self = &*self / rhs;
    }
}

impl Rem<&UBig> for &UBig {
    type Output = UBig;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).1
    }
}

impl Rem for UBig {
    type Output = UBig;

    fn rem(self, rhs: UBig) -> UBig {
        &self % &rhs
    }
}

impl Rem<&UBig> for UBig {
    type Output = UBig;

    fn rem(self, rhs: &UBig) -> UBig {
        &self % rhs
    }
}

impl RemAssign<&UBig> for UBig {
    fn rem_assign(&mut self, rhs: &UBig) {
        *self = &*self % rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_division() {
        let (q, r) = UBig::from(100u64).div_rem(&UBig::from(7u64));
        assert_eq!(q, UBig::from(14u64));
        assert_eq!(r, UBig::from(2u64));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = UBig::from(3u64).div_rem(&UBig::from(7u64));
        assert!(q.is_zero());
        assert_eq!(r, UBig::from(3u64));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = UBig::one().div_rem(&UBig::zero());
    }

    #[test]
    fn reconstruction_property_random() {
        let mut rng = StdRng::seed_from_u64(99);
        for (abits, bbits) in [
            (128, 64),
            (1000, 100),
            (1000, 999),
            (1000, 1000),
            (4096, 65),
            (8192, 4096),
            (513, 512),
        ] {
            for _ in 0..10 {
                let a = UBig::random_bits(&mut rng, abits);
                let b = UBig::random_bits(&mut rng, bbits);
                let (q, r) = a.div_rem(&b);
                assert!(r < b, "{abits}/{bbits}: remainder too large");
                assert_eq!(&(&q * &b) + &r, a, "{abits}/{bbits}: reconstruction");
            }
        }
    }

    #[test]
    fn exact_division() {
        let mut rng = StdRng::seed_from_u64(100);
        let b = UBig::random_bits(&mut rng, 300);
        let q_expected = UBig::random_bits(&mut rng, 200);
        let a = &b * &q_expected;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q_expected);
        assert!(r.is_zero());
    }

    #[test]
    fn knuth_d_correction_case() {
        // A case engineered to trigger the "add back" branch: divisor with
        // top limb just above 2^63, dividend forcing q̂ overestimation.
        let v = UBig::from_limbs(vec![0, u64::MAX, 0x8000_0000_0000_0000]);
        let u = &(&v << 128) - &UBig::one();
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn div_rem_small_matches_div_rem() {
        let mut rng = StdRng::seed_from_u64(101);
        let a = UBig::random_bits(&mut rng, 1000);
        for d in [1u64, 2, 3, 10, u64::MAX, 0x8000_0000_0000_0001] {
            let (q1, r1) = a.div_rem_small(d);
            let (q2, r2) = a.div_rem(&UBig::from(d));
            assert_eq!(q1, q2);
            assert_eq!(UBig::from(r1), r2);
        }
    }

    #[test]
    fn operators() {
        let a = UBig::from(1000u64);
        let b = UBig::from(33u64);
        assert_eq!(&a / &b, UBig::from(30u64));
        assert_eq!(&a % &b, UBig::from(10u64));
        assert_eq!(a.rem_euclid(&b), UBig::from(10u64));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(UBig::from(12u64).gcd(&UBig::from(18u64)), UBig::from(6u64));
        assert_eq!(UBig::zero().gcd(&UBig::from(5u64)), UBig::from(5u64));
        assert_eq!(UBig::from(5u64).gcd(&UBig::zero()), UBig::from(5u64));
        let mut rng = StdRng::seed_from_u64(102);
        let g = UBig::random_bits(&mut rng, 100);
        let a = &g * &UBig::from(101u64); // 101 and 103 are coprime
        let b = &g * &UBig::from(103u64);
        assert_eq!(a.gcd(&b), g);
    }
}
