//! Barrett reduction for repeated reduction by a fixed modulus.
//!
//! The related work the paper compares against ([32], Cao et al.) pairs an
//! FFT multiplier with a Barrett reduction module; DGHV's public-key
//! operations (`mod x_0`) also reduce repeatedly by one fixed modulus, which
//! is exactly Barrett's sweet spot: one precomputed reciprocal, then each
//! reduction costs two multiplications instead of a full division.

use crate::ubig::UBig;
use crate::ArithmeticError;

/// Precomputed state for reducing values modulo a fixed `m`.
///
/// Implements HAC Algorithm 14.42 with base `b = 2^64`:
/// `µ = ⌊b^{2k} / m⌋` where `k` is the limb count of `m`; then for
/// `x < b^{2k}`, `q ≈ ⌊⌊x / b^{k−1}⌋ · µ / b^{k+1}⌋` and
/// `x − q·m` is within `3m` of the true remainder.
///
/// ```
/// use he_bigint::{BarrettReducer, UBig};
///
/// let m = UBig::from(0xffff_fffb_u64); // a prime
/// let reducer = BarrettReducer::new(m.clone()).unwrap();
/// let x = UBig::from(u128::MAX);
/// assert_eq!(reducer.reduce(&x), x.rem_euclid(&m));
/// ```
#[derive(Debug, Clone)]
pub struct BarrettReducer {
    modulus: UBig,
    mu: UBig,
    k: usize,
}

impl BarrettReducer {
    /// Precomputes the reciprocal `µ = ⌊2^{128k} / m⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticError::DivisionByZero`] if `modulus` is zero.
    pub fn new(modulus: UBig) -> Result<BarrettReducer, ArithmeticError> {
        if modulus.is_zero() {
            return Err(ArithmeticError::DivisionByZero);
        }
        let k = modulus.as_limbs().len();
        let mu = &UBig::pow2(128 * k) / &modulus;
        Ok(BarrettReducer { modulus, mu, k })
    }

    /// The modulus this reducer reduces by.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// Reduces `x` modulo the modulus.
    ///
    /// Fast (two multiplications + at most two subtractions) when
    /// `x < 2^{128k}`, i.e. for any product of two reduced values; falls
    /// back to long division for wider inputs.
    pub fn reduce(&self, x: &UBig) -> UBig {
        if x < &self.modulus {
            return x.clone();
        }
        if x.as_limbs().len() > 2 * self.k {
            // Outside Barrett's input range; use the exact division.
            return x.rem_euclid(&self.modulus);
        }
        let q1 = x >> (64 * (self.k - 1));
        let q2 = &q1 * &self.mu;
        let q3 = q2 >> (64 * (self.k + 1));
        let r2 = &q3 * &self.modulus;
        // r = x − q3·m; the estimate guarantees 0 ≤ r < 3m.
        let mut r = x
            .checked_sub(&r2)
            .expect("Barrett estimate never exceeds x");
        while r >= self.modulus {
            r -= &self.modulus;
        }
        r
    }

    /// Reduces the product `a·b` of two already-reduced values.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `a` or `b` is not already reduced.
    pub fn mul_mod(&self, a: &UBig, b: &UBig) -> UBig {
        debug_assert!(a < &self.modulus && b < &self.modulus);
        self.reduce(&(a * b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_modulus() {
        assert_eq!(
            BarrettReducer::new(UBig::zero()).unwrap_err(),
            ArithmeticError::DivisionByZero
        );
    }

    #[test]
    fn matches_div_rem_random() {
        let mut rng = StdRng::seed_from_u64(1234);
        for mbits in [64usize, 100, 512, 1000, 4096] {
            let m = UBig::random_bits(&mut rng, mbits);
            let reducer = BarrettReducer::new(m.clone()).unwrap();
            for xbits in [
                1usize,
                mbits - 1,
                mbits,
                mbits + 1,
                2 * mbits - 1,
                2 * mbits + 64,
            ] {
                let x = UBig::random_bits(&mut rng, xbits);
                assert_eq!(
                    reducer.reduce(&x),
                    x.rem_euclid(&m),
                    "mbits={mbits} xbits={xbits}"
                );
            }
        }
    }

    #[test]
    fn mul_mod_matches() {
        let mut rng = StdRng::seed_from_u64(5678);
        let m = UBig::random_bits(&mut rng, 777);
        let reducer = BarrettReducer::new(m.clone()).unwrap();
        let a = UBig::random_below(&mut rng, &m);
        let b = UBig::random_below(&mut rng, &m);
        assert_eq!(reducer.mul_mod(&a, &b), (&a * &b).rem_euclid(&m));
    }

    #[test]
    fn edge_values() {
        let m = UBig::from(97u64);
        let reducer = BarrettReducer::new(m.clone()).unwrap();
        assert_eq!(reducer.reduce(&UBig::zero()), UBig::zero());
        assert_eq!(reducer.reduce(&UBig::from(96u64)), UBig::from(96u64));
        assert_eq!(reducer.reduce(&UBig::from(97u64)), UBig::zero());
        assert_eq!(reducer.reduce(&UBig::from(98u64)), UBig::one());
        // exactly m² − 1, the largest "product" input
        let m2 = &(&m * &m) - &UBig::one();
        assert_eq!(reducer.reduce(&m2), m2.rem_euclid(&m));
    }
}
