//! From-scratch arbitrary-precision integer arithmetic for homomorphic
//! encryption workloads.
//!
//! The DATE 2016 accelerator multiplies integers of 786,432 bits (the DGHV
//! "small" security setting); this crate is the software substrate those
//! numbers live in. It provides:
//!
//! * [`UBig`] — an unsigned big integer with addition, subtraction,
//!   comparison, shifts, and bit access;
//! * three classical multiplication algorithms — [`UBig::mul_schoolbook`]
//!   (`O(n^2)`), [`UBig::mul_karatsuba`] (`O(n^1.585)`) and
//!   [`UBig::mul_toom3`] (`O(n^1.465)`) — which serve as the software
//!   baselines the paper's Schönhage–Strassen accelerator (crate `he-ssa`)
//!   is compared against;
//! * long division ([`UBig::div_rem`], Knuth's Algorithm D) and
//!   [`BarrettReducer`] for repeated reduction by a fixed modulus (the
//!   technique the related work \[32\] pairs with FFT multiplication);
//! * [`IBig`] — a thin signed wrapper used by Toom-3 interpolation and by
//!   DGHV's centered remainders.
//!
//! # Example
//!
//! ```
//! use he_bigint::UBig;
//!
//! let a = UBig::from_hex("ffff_ffff_ffff_ffff")?;
//! let b = UBig::from(2u64);
//! assert_eq!(&a * &b - a.clone(), a);
//! # Ok::<(), he_bigint::ParseUBigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod barrett;
mod div;
mod ibig;
mod modular;
mod mul;
mod parse;
mod ubig;

pub use barrett::BarrettReducer;
pub use ibig::IBig;
pub use parse::ParseUBigError;
pub use ubig::UBig;

/// Errors arising from arithmetic misuse in fallible entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithmeticError {
    /// Subtraction would produce a negative value in an unsigned context.
    Underflow,
    /// Division or reduction by zero.
    DivisionByZero,
}

impl core::fmt::Display for ArithmeticError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ArithmeticError::Underflow => write!(f, "unsigned subtraction underflow"),
            ArithmeticError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for ArithmeticError {}
