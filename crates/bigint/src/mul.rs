//! Classical multiplication algorithms: schoolbook, Karatsuba, Toom-3.
//!
//! These are the software baselines for the paper's Schönhage–Strassen
//! accelerator (Section III observes SSA "is advantageous for operands of at
//! least 100,000 bits"; the `mul_crossover` bench reproduces that claim).
//! The `*` operator dispatches on size.

use core::ops::{Mul, MulAssign};

use crate::ibig::IBig;
use crate::ubig::UBig;

/// Limb count above which `*` switches from schoolbook to Karatsuba.
pub const KARATSUBA_THRESHOLD: usize = 32;

/// Limb count above which `*` switches from Karatsuba to Toom-3.
pub const TOOM3_THRESHOLD: usize = 192;

impl UBig {
    /// Schoolbook `O(n·m)` multiplication.
    ///
    /// ```
    /// use he_bigint::UBig;
    /// let a = UBig::from(u64::MAX);
    /// // (2^64 − 1)² = (2^64 − 1)·2^64 − (2^64 − 1)
    /// assert_eq!(a.mul_schoolbook(&a), &(&a << 64) - &a);
    /// ```
    pub fn mul_schoolbook(&self, other: &UBig) -> UBig {
        let (a, b) = (self.as_limbs(), other.as_limbs());
        if a.is_empty() || b.is_empty() {
            return UBig::zero();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        UBig::from_limbs(out)
    }

    /// Karatsuba `O(n^log2(3))` multiplication (falls back to schoolbook
    /// below `KARATSUBA_THRESHOLD` limbs).
    pub fn mul_karatsuba(&self, other: &UBig) -> UBig {
        let n = self.as_limbs().len().max(other.as_limbs().len());
        if n < KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        let m = n / 2;
        let (a0, a1) = split_at_limb(self, m);
        let (b0, b1) = split_at_limb(other, m);
        let z0 = a0.mul_karatsuba(&b0);
        let z2 = a1.mul_karatsuba(&b1);
        let z1 = (&a0 + &a1).mul_karatsuba(&(&b0 + &b1)) - &z0 - &z2;
        // z2·B^2m + z1·B^m + z0
        let mut out = (&z2 << (128 * m)) + (&z1 << (64 * m));
        out += z0;
        out
    }

    /// Toom-3 `O(n^log3(5))` multiplication (falls back to Karatsuba below
    /// `TOOM3_THRESHOLD` limbs).
    ///
    /// Evaluation points `{0, 1, −1, 2, ∞}`; interpolation uses exact signed
    /// arithmetic ([`IBig`]) with exact divisions by 2 and 3.
    pub fn mul_toom3(&self, other: &UBig) -> UBig {
        let n = self.as_limbs().len().max(other.as_limbs().len());
        if n < TOOM3_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        let m = n.div_ceil(3);
        let (a0, a1, a2) = split3(self, m);
        let (b0, b1, b2) = split3(other, m);

        let eval = |x0: &UBig, x1: &UBig, x2: &UBig| -> [IBig; 5] {
            let p0 = IBig::from(x0.clone());
            let p_inf = IBig::from(x2.clone());
            let sum02 = IBig::from(x0 + x2);
            let p1 = &sum02 + &IBig::from(x1.clone());
            let pm1 = &sum02 - &IBig::from(x1.clone());
            // p(2) = x0 + 2·x1 + 4·x2
            let p2 = IBig::from(x0 + &(x1 << 1) + (x2 << 2));
            [p0, p1, pm1, p2, p_inf]
        };
        let pa = eval(&a0, &a1, &a2);
        let pb = eval(&b0, &b1, &b2);

        let r0 = &pa[0] * &pb[0];
        let r1 = &pa[1] * &pb[1];
        let rm1 = &pa[2] * &pb[2];
        let r2 = &pa[3] * &pb[3];
        let r_inf = &pa[4] * &pb[4];

        // Interpolate c(x) = c0 + c1·x + c2·x² + c3·x³ + c4·x⁴.
        let c0 = r0.clone();
        let c4 = r_inf.clone();
        let t1 = (&r1 + &rm1).div_exact_small(2); // c0 + c2 + c4
        let t2 = (&r1 - &rm1).div_exact_small(2); // c1 + c3
        let c2 = &(&t1 - &c0) - &c4;
        // r2 = c0 + 2c1 + 4c2 + 8c3 + 16c4
        let u = (&(&(&r2 - &c0) - &(&c2 << 2)) - &(&c4 << 4)).div_exact_small(2); // c1 + 4c3
        let c3 = (&u - &t2).div_exact_small(3);
        let c1 = &t2 - &c3;

        // All coefficients of a product of nonnegative polynomials are
        // nonnegative, so the conversions cannot fail.
        let shift = 64 * m;
        let mut out = c0.into_ubig().expect("c0 >= 0");
        out += &(c1.into_ubig().expect("c1 >= 0") << shift);
        out += &(c2.into_ubig().expect("c2 >= 0") << (2 * shift));
        out += &(c3.into_ubig().expect("c3 >= 0") << (3 * shift));
        out += &(c4.into_ubig().expect("c4 >= 0") << (4 * shift));
        out
    }

    /// Squares the value (dispatching like `*`).
    pub fn square(&self) -> UBig {
        self * self
    }
}

/// Splits into `(low m limbs, rest)`.
fn split_at_limb(x: &UBig, m: usize) -> (UBig, UBig) {
    let limbs = x.as_limbs();
    if limbs.len() <= m {
        (x.clone(), UBig::zero())
    } else {
        (
            UBig::from_limbs(limbs[..m].to_vec()),
            UBig::from_limbs(limbs[m..].to_vec()),
        )
    }
}

/// Splits into three `m`-limb parts (little-endian).
fn split3(x: &UBig, m: usize) -> (UBig, UBig, UBig) {
    let limbs = x.as_limbs();
    let part = |range: core::ops::Range<usize>| {
        let lo = range.start.min(limbs.len());
        let hi = range.end.min(limbs.len());
        UBig::from_limbs(limbs[lo..hi].to_vec())
    };
    (part(0..m), part(m..2 * m), part(2 * m..3 * m))
}

impl Mul<&UBig> for &UBig {
    type Output = UBig;

    fn mul(self, rhs: &UBig) -> UBig {
        let n = self.as_limbs().len().max(rhs.as_limbs().len());
        if n >= TOOM3_THRESHOLD {
            self.mul_toom3(rhs)
        } else if n >= KARATSUBA_THRESHOLD {
            self.mul_karatsuba(rhs)
        } else {
            self.mul_schoolbook(rhs)
        }
    }
}

impl Mul for UBig {
    type Output = UBig;

    fn mul(self, rhs: UBig) -> UBig {
        &self * &rhs
    }
}

impl Mul<&UBig> for UBig {
    type Output = UBig;

    fn mul(self, rhs: &UBig) -> UBig {
        &self * rhs
    }
}

impl Mul<UBig> for &UBig {
    type Output = UBig;

    fn mul(self, rhs: UBig) -> UBig {
        self * &rhs
    }
}

impl Mul<u64> for &UBig {
    type Output = UBig;

    fn mul(self, rhs: u64) -> UBig {
        if rhs == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.as_limbs().len() + 1);
        let mut carry = 0u128;
        for &l in self.as_limbs() {
            let t = l as u128 * rhs as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }
}

impl Mul<u64> for UBig {
    type Output = UBig;

    fn mul(self, rhs: u64) -> UBig {
        &self * rhs
    }
}

impl MulAssign<&UBig> for UBig {
    fn mul_assign(&mut self, rhs: &UBig) {
        *self = &*self * rhs;
    }
}

impl MulAssign for UBig {
    fn mul_assign(&mut self, rhs: UBig) {
        *self = &*self * &rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_products() {
        assert_eq!(UBig::zero() * UBig::from(5u64), UBig::zero());
        assert_eq!(UBig::from(7u64) * UBig::from(6u64), UBig::from(42u64));
        assert_eq!(
            UBig::from(u64::MAX) * UBig::from(u64::MAX),
            UBig::from(u64::MAX as u128 * u64::MAX as u128)
        );
    }

    #[test]
    #[allow(clippy::erasing_op)] // multiplying by zero is the point
    fn mul_by_u64_scalar() {
        let a = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        assert_eq!(&a * 2u64, &a << 1);
        assert_eq!(&a * 0u64, UBig::zero());
        assert_eq!(&a * 1u64, a);
    }

    #[test]
    fn algorithms_agree_at_mixed_sizes() {
        let mut rng = StdRng::seed_from_u64(2016);
        // Deliberately straddle both thresholds and use asymmetric sizes.
        for (abits, bbits) in [
            (64, 64),
            (1000, 1000),
            (64 * KARATSUBA_THRESHOLD, 64 * KARATSUBA_THRESHOLD),
            (64 * KARATSUBA_THRESHOLD + 13, 257),
            (64 * TOOM3_THRESHOLD, 64 * TOOM3_THRESHOLD),
            (64 * TOOM3_THRESHOLD + 7, 64 * KARATSUBA_THRESHOLD),
            (20_000, 30_000),
        ] {
            let a = UBig::random_bits(&mut rng, abits);
            let b = UBig::random_bits(&mut rng, bbits);
            let school = a.mul_schoolbook(&b);
            assert_eq!(a.mul_karatsuba(&b), school, "karatsuba {abits}x{bbits}");
            assert_eq!(a.mul_toom3(&b), school, "toom3 {abits}x{bbits}");
            assert_eq!(&a * &b, school, "dispatch {abits}x{bbits}");
            assert_eq!(&b * &a, school, "commuted {abits}x{bbits}");
        }
    }

    #[test]
    fn square_matches_mul() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = UBig::random_bits(&mut rng, 5000);
        assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn distributivity_spot_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = UBig::random_bits(&mut rng, 3000);
        let b = UBig::random_bits(&mut rng, 2500);
        let c = UBig::random_bits(&mut rng, 2800);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn multiplication_by_powers_of_two_is_shift() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = UBig::random_bits(&mut rng, 10_000);
        assert_eq!(&a * &UBig::pow2(777), &a << 777);
    }
}
