//! The unsigned big-integer type.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Shl, ShlAssign, Shr, ShrAssign, Sub, SubAssign};

use rand::Rng;

use crate::ArithmeticError;

/// An arbitrary-precision unsigned integer.
///
/// Stored as little-endian 64-bit limbs with no trailing zero limbs (the
/// canonical representation of zero is an empty limb vector).
///
/// Arithmetic operators are implemented for both owned values and
/// references; prefer `&a + &b` in loops to avoid clones.
///
/// # Example
///
/// ```
/// use he_bigint::UBig;
///
/// let a = UBig::pow2(100); // 2^100
/// let b = &a - &UBig::one();
/// assert_eq!(b.bit_len(), 100);
/// assert_eq!(&b + &UBig::one(), a);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value zero.
    #[inline]
    pub fn zero() -> UBig {
        UBig { limbs: Vec::new() }
    }

    /// The value one.
    #[inline]
    pub fn one() -> UBig {
        UBig { limbs: vec![1] }
    }

    /// `2^bits`.
    pub fn pow2(bits: usize) -> UBig {
        let mut limbs = vec![0u64; bits / 64 + 1];
        limbs[bits / 64] = 1u64 << (bits % 64);
        UBig::from_limbs(limbs)
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> UBig {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Overwrites this value from little-endian limbs, reusing the
    /// existing allocation (no heap traffic once the capacity fits).
    ///
    /// The allocation-free carry-recovery path of the SSA multiplier
    /// (`he-ssa`) writes each product into a caller-owned `UBig` this way.
    pub fn assign_from_limbs(&mut self, limbs: &[u64]) {
        let significant = limbs
            .iter()
            .rposition(|&l| l != 0)
            .map_or(0, |last| last + 1);
        self.limbs.clear();
        self.limbs.extend_from_slice(&limbs[..significant]);
    }

    /// Constructs from little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8]) -> UBig {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        UBig::from_limbs(limbs)
    }

    /// The value as little-endian bytes (no trailing zeros, empty for 0).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut bytes: Vec<u8> = self.limbs.iter().flat_map(|l| l.to_le_bytes()).collect();
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        bytes
    }

    /// A view of the little-endian limbs.
    #[inline]
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Consumes the value, returning its limbs.
    #[inline]
    pub fn into_limbs(self) -> Vec<u64> {
        self.limbs
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Whether the value is even.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// The number of significant bits (`0` for zero).
    ///
    /// ```
    /// use he_bigint::UBig;
    /// assert_eq!(UBig::zero().bit_len(), 0);
    /// assert_eq!(UBig::from(1u64).bit_len(), 1);
    /// assert_eq!(UBig::pow2(786_432).bit_len(), 786_433);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// The bit at position `i` (little-endian).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            false
        } else {
            (self.limbs[limb] >> (i % 64)) & 1 == 1
        }
    }

    /// Sets the bit at position `i`, growing the number if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let limb = i / 64;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1u64 << (i % 64);
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1u64 << (i % 64));
            self.normalize();
        }
    }

    /// The number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The low 64 bits.
    #[inline]
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Extracts `count` bits starting at bit `start` as a `u64`
    /// (`count ≤ 64`); bits beyond the end read as zero.
    ///
    /// This is the coefficient-decomposition primitive of the
    /// Schönhage–Strassen front-end ("decompose operands into groups of `m`
    /// bits", paper Section III).
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn bits_at(&self, start: usize, count: u32) -> u64 {
        assert!(count <= 64, "bits_at extracts at most 64 bits");
        if count == 0 {
            return 0;
        }
        let limb = start / 64;
        let offset = (start % 64) as u32;
        let lo = self.limbs.get(limb).copied().unwrap_or(0) >> offset;
        let hi = if offset == 0 {
            0
        } else {
            self.limbs
                .get(limb + 1)
                .copied()
                .unwrap_or(0)
                .checked_shl(64 - offset)
                .unwrap_or(0)
        };
        let word = lo | hi;
        if count == 64 {
            word
        } else {
            word & ((1u64 << count) - 1)
        }
    }

    /// Uniformly random integer with exactly `bits` significant bits
    /// (the top bit is forced to one); `bits == 0` gives zero.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> UBig {
        if bits == 0 {
            return UBig::zero();
        }
        let limbs = bits.div_ceil(64);
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs - 1) * 64;
        let top = &mut v[limbs - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1);
        UBig::from_limbs(v)
    }

    /// Uniformly random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &UBig) -> UBig {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bit_len();
        loop {
            // Rejection sampling from [0, 2^bits).
            let limbs = bits.div_ceil(64);
            let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs - 1) * 64;
            if top_bits < 64 {
                v[limbs - 1] &= (1u64 << top_bits) - 1;
            }
            let candidate = UBig::from_limbs(v);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// `self + other`, reusing `self`'s allocation.
    pub fn add_assign_ref(&mut self, other: &UBig) {
        if other.limbs.len() > self.limbs.len() {
            self.limbs.resize(other.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *a = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self − other`, or an error on underflow.
    ///
    /// # Errors
    ///
    /// Returns [`ArithmeticError::Underflow`] if `other > self`.
    pub fn checked_sub(&self, other: &UBig) -> Result<UBig, ArithmeticError> {
        if self < other {
            return Err(ArithmeticError::Underflow);
        }
        let mut out = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, a) in out.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *a = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Ok(UBig::from_limbs(out))
    }

    /// Restores the no-trailing-zero invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for UBig {
    fn from(value: u64) -> UBig {
        if value == 0 {
            UBig::zero()
        } else {
            UBig { limbs: vec![value] }
        }
    }
}

impl From<u128> for UBig {
    fn from(value: u128) -> UBig {
        UBig::from_limbs(vec![value as u64, (value >> 64) as u64])
    }
}

impl From<u32> for UBig {
    fn from(value: u32) -> UBig {
        UBig::from(value as u64)
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &UBig) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &UBig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

// --- addition -------------------------------------------------------------

impl Add<&UBig> for &UBig {
    type Output = UBig;

    fn add(self, rhs: &UBig) -> UBig {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for UBig {
    type Output = UBig;

    fn add(mut self, rhs: UBig) -> UBig {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<&UBig> for UBig {
    type Output = UBig;

    fn add(mut self, rhs: &UBig) -> UBig {
        self.add_assign_ref(rhs);
        self
    }
}

impl Add<UBig> for &UBig {
    type Output = UBig;

    fn add(self, mut rhs: UBig) -> UBig {
        rhs.add_assign_ref(self);
        rhs
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        self.add_assign_ref(rhs);
    }
}

impl AddAssign for UBig {
    fn add_assign(&mut self, rhs: UBig) {
        self.add_assign_ref(&rhs);
    }
}

// --- subtraction (panics on underflow, like std unsigned ints) -------------

impl Sub<&UBig> for &UBig {
    type Output = UBig;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`UBig::checked_sub`] for a fallible
    /// version.
    fn sub(self, rhs: &UBig) -> UBig {
        self.checked_sub(rhs).expect("UBig subtraction underflow")
    }
}

impl Sub for UBig {
    type Output = UBig;

    fn sub(self, rhs: UBig) -> UBig {
        &self - &rhs
    }
}

impl Sub<&UBig> for UBig {
    type Output = UBig;

    fn sub(self, rhs: &UBig) -> UBig {
        &self - rhs
    }
}

impl Sub<UBig> for &UBig {
    type Output = UBig;

    fn sub(self, rhs: UBig) -> UBig {
        self - &rhs
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = &*self - rhs;
    }
}

impl SubAssign for UBig {
    fn sub_assign(&mut self, rhs: UBig) {
        *self = &*self - &rhs;
    }
}

// --- shifts ----------------------------------------------------------------

impl Shl<usize> for &UBig {
    type Output = UBig;

    fn shl(self, shift: usize) -> UBig {
        if self.is_zero() {
            return UBig::zero();
        }
        let limb_shift = shift / 64;
        let bit_shift = shift % 64;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= l.checked_shl(bit_shift as u32).unwrap_or(0);
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        UBig::from_limbs(out)
    }
}

impl Shl<usize> for UBig {
    type Output = UBig;

    fn shl(self, shift: usize) -> UBig {
        &self << shift
    }
}

impl ShlAssign<usize> for UBig {
    fn shl_assign(&mut self, shift: usize) {
        *self = &*self << shift;
    }
}

impl Shr<usize> for &UBig {
    type Output = UBig;

    fn shr(self, shift: usize) -> UBig {
        let limb_shift = shift / 64;
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let bit_shift = shift % 64;
        let n = self.limbs.len() - limb_shift;
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = self.limbs[i + limb_shift] >> bit_shift;
            let hi = if bit_shift == 0 {
                0
            } else {
                self.limbs
                    .get(i + limb_shift + 1)
                    .copied()
                    .unwrap_or(0)
                    .checked_shl(64 - bit_shift as u32)
                    .unwrap_or(0)
            };
            *slot = lo | hi;
        }
        UBig::from_limbs(out)
    }
}

impl Shr<usize> for UBig {
    type Output = UBig;

    fn shr(self, shift: usize) -> UBig {
        &self >> shift
    }
}

impl ShrAssign<usize> for UBig {
    fn shr_assign(&mut self, shift: usize) {
        *self = &*self >> shift;
    }
}

// --- formatting -------------------------------------------------------------

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bit_len() <= 128 {
            write!(f, "UBig({self})")
        } else {
            write!(
                f,
                "UBig(<{} bits> {:#x}...)",
                self.bit_len(),
                self.limbs.last().unwrap()
            )
        }
    }
}

impl fmt::Display for UBig {
    /// Decimal representation (computed by repeated division; intended for
    /// small-to-moderate values, not megabit operands).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(10_000_000_000_000_000_000); // 10^19
            digits.push(r);
            cur = q;
        }
        let mut s = digits.pop().unwrap().to_string();
        while let Some(d) = digits.pop() {
            s.push_str(&format!("{d:019}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::LowerHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:X}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016X}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(UBig::zero().is_zero());
        assert!(UBig::one().is_one());
        assert_eq!(UBig::from(0u64), UBig::zero());
        assert!(UBig::default().is_zero());
        assert_eq!(UBig::zero().bit_len(), 0);
    }

    #[test]
    fn normalization() {
        let a = UBig::from_limbs(vec![1, 0, 0]);
        assert_eq!(a.as_limbs(), &[1]);
        assert_eq!(UBig::from_limbs(vec![0, 0]), UBig::zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = UBig::one();
        let sum = &a + &b;
        assert_eq!(sum.as_limbs(), &[0, 0, 1]);
        assert_eq!(sum - b, a);
    }

    #[test]
    fn sub_underflow_is_error() {
        let err = UBig::one().checked_sub(&UBig::from(2u64)).unwrap_err();
        assert_eq!(err, ArithmeticError::Underflow);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = UBig::one() - UBig::from(2u64);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = UBig::from(0xdead_beefu64);
        for s in [0usize, 1, 63, 64, 65, 127, 128, 1000] {
            assert_eq!((&a << s) >> s, a, "shift {s}");
        }
        assert_eq!(UBig::pow2(100), UBig::one() << 100);
        assert_eq!(&UBig::from(1u64) >> 1, UBig::zero());
    }

    #[test]
    fn ordering() {
        assert!(UBig::zero() < UBig::one());
        assert!(UBig::pow2(64) > UBig::from(u64::MAX));
        assert_eq!(UBig::pow2(10).cmp(&UBig::from(1024u64)), Ordering::Equal);
    }

    #[test]
    fn bit_access() {
        let mut a = UBig::zero();
        a.set_bit(100, true);
        assert_eq!(a, UBig::pow2(100));
        assert!(a.bit(100));
        assert!(!a.bit(99));
        assert!(!a.bit(10_000));
        a.set_bit(100, false);
        assert!(a.is_zero());
    }

    #[test]
    fn bits_at_extraction() {
        // 0b1111_0000_1010 = 0xF0A
        let a = UBig::from(0xF0Au64);
        assert_eq!(a.bits_at(0, 4), 0xA);
        assert_eq!(a.bits_at(4, 4), 0x0);
        assert_eq!(a.bits_at(8, 4), 0xF);
        assert_eq!(a.bits_at(12, 4), 0);
        // Straddling a limb boundary.
        let b = &UBig::from(0b1011u64) << 62;
        assert_eq!(b.bits_at(62, 4), 0b1011);
        assert_eq!(b.bits_at(60, 24), 0b1011 << 2);
        // Full 64-bit extraction.
        let c = UBig::from_limbs(vec![0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]);
        assert_eq!(c.bits_at(0, 64), 0x0123_4567_89ab_cdef);
        assert_eq!(c.bits_at(64, 64), 0xfedc_ba98_7654_3210);
        assert_eq!(c.bits_at(32, 64), 0x7654_3210_0123_4567);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn bits_at_rejects_large_count() {
        UBig::zero().bits_at(0, 65);
    }

    #[test]
    fn le_bytes_roundtrip() {
        let a = UBig::from_limbs(vec![0x0123_4567_89ab_cdef, 0xff]);
        assert_eq!(UBig::from_le_bytes(&a.to_le_bytes()), a);
        assert_eq!(UBig::zero().to_le_bytes(), Vec::<u8>::new());
        assert_eq!(UBig::from_le_bytes(&[]), UBig::zero());
    }

    #[test]
    fn random_bits_has_exact_length() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for bits in [1usize, 2, 63, 64, 65, 1000] {
            let v = UBig::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits = {bits}");
        }
        assert!(UBig::random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_below_respects_bound() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let bound = UBig::from(1000u64);
        for _ in 0..200 {
            assert!(UBig::random_below(&mut rng, &bound) < bound);
        }
    }

    #[test]
    fn display_and_hex() {
        assert_eq!(UBig::zero().to_string(), "0");
        assert_eq!(
            UBig::from(1234567890123456789u64).to_string(),
            "1234567890123456789"
        );
        // A 2-limb value: 2^64 = 18446744073709551616.
        assert_eq!(UBig::pow2(64).to_string(), "18446744073709551616");
        assert_eq!(format!("{:x}", UBig::pow2(64)), "10000000000000000");
        assert_eq!(format!("{:#x}", UBig::from(255u64)), "0xff");
        assert_eq!(format!("{:X}", UBig::from(255u64)), "FF");
    }

    #[test]
    fn to_u64_u128() {
        assert_eq!(UBig::zero().to_u64(), Some(0));
        assert_eq!(UBig::from(5u64).to_u64(), Some(5));
        assert_eq!(UBig::pow2(64).to_u64(), None);
        assert_eq!(UBig::pow2(64).to_u128(), Some(1u128 << 64));
        assert_eq!(UBig::pow2(128).to_u128(), None);
        assert_eq!(
            UBig::from(u128::MAX),
            UBig::from_limbs(vec![u64::MAX, u64::MAX])
        );
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(UBig::zero().trailing_zeros(), None);
        assert_eq!(UBig::one().trailing_zeros(), Some(0));
        assert_eq!(UBig::pow2(100).trailing_zeros(), Some(100));
    }

    #[test]
    fn is_even() {
        assert!(UBig::zero().is_even());
        assert!(!UBig::one().is_even());
        assert!(UBig::pow2(64).is_even());
    }
}
