// BAD: the supervisor loop has three ways to die here — a panic in the
// worker itself hangs every client whose sink it holds; catch_unwind only
// protects the *backend* call.
// lint: supervisor
pub fn worker_step(jobs: &mut Vec<Job>, live: &[CardState]) {
    let job = jobs.pop().unwrap();
    let first = live[0].generation;
    if job.generation != first {
        panic!("generation mismatch in supervisor");
    }
    let slot = live.iter().position(|c| c.idle).expect("an idle card");
    let _ = slot;
}
// lint: end supervisor
