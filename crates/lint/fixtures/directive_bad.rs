// BAD: three malformed directives — a reason-less waiver, an unknown
// directive, and a region never closed.
pub fn noisy() {
    // lint: allow(panic-path)
    let _ = ();
    // lint: frobnicate
}
// lint: supervisor
pub fn open_ended() {}
