// BAD: three heap allocations on the warm path — the counting-allocator
// test would catch these at runtime; the lint catches them at review time.
// lint: no-alloc
pub fn warm_butterfly(tile: &mut [Fp], twiddles: &[Fp]) {
    let staged: Vec<Fp> = tile.iter().copied().collect();
    let mirror = staged.clone();
    let mut spill = Vec::new();
    spill.extend_from_slice(&mirror);
    for (t, s) in tile.iter_mut().zip(spill.iter()) {
        *t = t.mul(*s).add(twiddles[0]);
    }
}
// lint: end no-alloc
