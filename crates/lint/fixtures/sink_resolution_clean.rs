// CLEAN: the sink reaches a send on every path before scope exit.
pub fn resolve_on_both_paths(tx: Sender, shutting_down: bool) {
    let reply = ReplySink::Ticket(tx);
    if shutting_down {
        reply.send(closed());
        return;
    }
    reply.send(product());
}

// CLEAN: the ticket pattern — the sender half is handed to the queue (the
// `?` propagates only after the sink is out of our hands), the receiver
// half goes back to the caller.
pub fn ticket(queue: &Queue, request: Request) -> Result<Receiver, ServeError> {
    let (reply, rx) = mpsc::channel();
    queue.enqueue(request, ReplySink::Ticket(reply))?;
    Ok(rx)
}

// CLEAN: only the backend runs contained; the sink is resolved outside.
pub fn contain_backend_only(job: Job, backend: &Backend) {
    let outcome = catch_unwind(AssertUnwindSafe(|| backend.flush()));
    job.reply.send(outcome);
}
