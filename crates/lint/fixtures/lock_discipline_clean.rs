// CLEAN: lock held only for the pop and the push-back, never across the
// transform — the checkout-pool discipline.
pub fn pop_transform_push(pool: &Mutex<Vec<Scratch>>, plan: &Plan, data: &mut [u64]) {
    let mut unit = pool.lock().unwrap().pop().unwrap_or_default();
    plan.forward_into(data);
    pool.lock().unwrap().push(unit);
}

// CLEAN: explicit drop releases the guard before the transform.
pub fn drop_then_transform(state: &Mutex<State>, engine: &Engine, jobs: &[Job]) {
    let guard = lock_or_recover(state);
    let batch = guard.len();
    drop(guard);
    engine.multiply_batch(&jobs[..batch.min(jobs.len())]);
}

// CLEAN: a snapshot taken under the lock is a statement temporary — the
// guard is dead at the semicolon, before prepare runs.
pub fn snapshot_then_prepare(registry: &Mutex<Registry>, engine: &Engine) {
    let pins = registry.lock().unwrap_or_else(|e| e.into_inner()).snapshot();
    for pin in pins {
        engine.prepare(&pin);
    }
}
