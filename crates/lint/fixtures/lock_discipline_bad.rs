// BAD: the pool guard's live range spans the transform call — every other
// worker serializes on this card's product (exactly what PR 2's
// checkout-pool design forbids).
pub fn held_across_transform(pool: &Mutex<Vec<Scratch>>, plan: &Plan, data: &mut [u64]) {
    let mut guard = pool.lock().unwrap();
    plan.forward_into(data);
    guard.push(Scratch::default());
}

// BAD: same shape through the poison-recovery helper.
pub fn held_across_multiply(state: &Mutex<State>, engine: &Engine, jobs: &[Job]) {
    let state = lock_or_recover(state);
    engine.multiply_batch(jobs);
    drop(state);
}
