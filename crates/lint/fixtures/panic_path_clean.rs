// CLEAN: every supervisor step is fallible — missing state means "skip
// and requeue", never "panic".
// lint: supervisor
pub fn worker_step(jobs: &mut Vec<Job>, live: &[CardState]) {
    let Some(job) = jobs.pop() else {
        return;
    };
    let Some(first) = live.first().map(|c| c.generation) else {
        return;
    };
    if job.generation != first {
        return;
    }
    let recovered = poisoned_lock(&job).unwrap_or_else(|e| e.into_inner());
    let count = job.retries.unwrap_or(0);
    let _ = (recovered, count);
    for side in [Side::A, Side::B] {
        let _ = side;
    }
}
// lint: end supervisor
