// CLEAN: in-place butterflies over caller-owned scratch; the one cold-path
// allocation is waived with a reason.
// lint: no-alloc
pub fn warm_butterfly(tile: &mut [Fp], twiddles: &[Fp], scratch: &mut [Fp]) {
    for (s, t) in scratch.iter_mut().zip(tile.iter()) {
        *s = *t;
    }
    for (t, (s, w)) in tile.iter_mut().zip(scratch.iter().zip(twiddles.iter())) {
        *t = t.mul(*s).add(*w);
    }
}

pub fn first_use(plan: &Plan) -> Table {
    // lint: allow(no-alloc) — cold init path, runs once per plan
    let table = Vec::with_capacity(plan.len());
    Table { table }
}
// lint: end no-alloc
