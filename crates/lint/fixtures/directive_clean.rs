// CLEAN: well-formed directives — balanced regions and a reasoned waiver.
// lint: supervisor
pub fn supervised() {
    // lint: allow(panic-path) — startup check, runs before any client connects
    let config = load_config().expect("static config parses at startup");
    serve(config);
}
// lint: end supervisor
