#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
