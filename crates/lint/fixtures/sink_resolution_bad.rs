// BAD: the early return leaks the constructed sink — the client behind it
// waits forever.
pub fn leak_on_early_exit(tx: Sender, shutting_down: bool) {
    let reply = ReplySink::Ticket(tx);
    if shutting_down {
        return;
    }
    reply.send(product());
}

// BAD: the sink is moved into the catch_unwind closure — an unwinding
// backend drops it unresolved (the exact bug PR 6's containment exists to
// prevent).
pub fn sink_under_unwind(job: Job) {
    let _ = catch_unwind(AssertUnwindSafe(|| job.reply.send(product())));
}
