// BAD: no `#![forbid(unsafe_code)]` at the crate root.
pub fn answer() -> u32 {
    42
}
