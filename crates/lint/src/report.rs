//! Report rendering and the grandfathered-findings baseline.
//!
//! The baseline is a checked-in JSON array of `{rule, file, key}` entries.
//! A finding whose triple matches a baseline entry is reported as
//! *grandfathered* and does not fail `--check`; a baseline entry no longer
//! matched by any finding is *stale* and fails `--check` (so the file can
//! only shrink). The key is the trimmed offending line, not its number —
//! stable under unrelated edits above it.
//!
//! Everything here is hand-rolled (the tool is dependency-free): a small
//! JSON writer with full string escaping, and a parser for exactly the
//! baseline's shape — an array of flat objects with string values.

use crate::rules::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub key: String,
}

/// JSON string escape (control chars, quotes, backslash).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON report (an object with a `findings` array).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"key\": \"{}\"}}{}\n",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message),
            escape(&f.key),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders a baseline file from findings.
pub fn baseline_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"key\": \"{}\"}}{}\n",
            escape(f.rule),
            escape(&f.file),
            escape(&f.key),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Parses a baseline file: a JSON array of flat objects with string values.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let skip_ws = |chars: &[char], i: &mut usize| {
        while *i < chars.len() && chars[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |chars: &[char], i: &mut usize| -> Result<String, String> {
        if chars.get(*i) != Some(&'"') {
            return Err(format!("expected string at offset {i}", i = *i));
        }
        *i += 1;
        let mut s = String::new();
        while *i < chars.len() {
            match chars[*i] {
                '"' => {
                    *i += 1;
                    return Ok(s);
                }
                '\\' => {
                    *i += 1;
                    match chars.get(*i) {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        Some('u') => {
                            let hex: String = chars[*i + 1..].iter().take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        Some(&c) => s.push(c),
                        None => return Err("dangling escape".to_string()),
                    }
                    *i += 1;
                }
                c => {
                    s.push(c);
                    *i += 1;
                }
            }
        }
        Err("unterminated string".to_string())
    };

    skip_ws(&chars, &mut i);
    if chars.get(i) != Some(&'[') {
        return Err("baseline must be a JSON array".to_string());
    }
    i += 1;
    loop {
        skip_ws(&chars, &mut i);
        match chars.get(i) {
            Some(']') => break,
            Some(',') => {
                i += 1;
                continue;
            }
            Some('{') => {
                i += 1;
                let mut rule = None;
                let mut file = None;
                let mut key = None;
                loop {
                    skip_ws(&chars, &mut i);
                    match chars.get(i) {
                        Some('}') => {
                            i += 1;
                            break;
                        }
                        Some(',') => {
                            i += 1;
                            continue;
                        }
                        Some('"') => {
                            let name = parse_string(&chars, &mut i)?;
                            skip_ws(&chars, &mut i);
                            if chars.get(i) != Some(&':') {
                                return Err("expected `:` after field name".to_string());
                            }
                            i += 1;
                            skip_ws(&chars, &mut i);
                            let value = parse_string(&chars, &mut i)?;
                            match name.as_str() {
                                "rule" => rule = Some(value),
                                "file" => file = Some(value),
                                "key" => key = Some(value),
                                other => return Err(format!("unknown baseline field `{other}`")),
                            }
                        }
                        _ => return Err("malformed baseline object".to_string()),
                    }
                }
                match (rule, file, key) {
                    (Some(rule), Some(file), Some(key)) => {
                        entries.push(BaselineEntry { rule, file, key })
                    }
                    _ => return Err("baseline entry missing rule/file/key".to_string()),
                }
            }
            _ => return Err("malformed baseline array".to_string()),
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: "panic-path",
            file: "crates/core/src/serve.rs".to_string(),
            line: 42,
            message: "an \"example\" message\twith escapes".to_string(),
            key: "let x = v[i];".to_string(),
        }]
    }

    #[test]
    fn baseline_roundtrips() {
        let json = baseline_to_json(&sample());
        let parsed = parse_baseline(&json).expect("roundtrip parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].rule, "panic-path");
        assert_eq!(parsed[0].key, "let x = v[i];");
    }

    #[test]
    fn empty_baseline_parses() {
        assert_eq!(parse_baseline("[]").expect("empty"), Vec::new());
        assert_eq!(parse_baseline("[\n]\n").expect("empty"), Vec::new());
    }

    #[test]
    fn report_json_escapes_strings() {
        let json = to_json(&sample());
        assert!(json.contains("\\\"example\\\""));
        assert!(json.contains("\\t"));
        assert!(json.contains("\"line\": 42"));
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("[{\"rule\": \"x\"}]").is_err());
    }
}
