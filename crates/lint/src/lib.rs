//! `he-lint` — the workspace invariant checker.
//!
//! The serving stack carries invariants that ordinary tests only catch
//! when a run happens to hit the bad interleaving: scratch-pool locks are
//! held only for pop/push (PR 2), the warm product path performs zero heap
//! allocations (PR 1), an unwinding backend can never drop reply sinks
//! (PR 6). This crate checks them *statically*, as a CI gate:
//!
//! ```text
//! cargo run -p he-lint -- --check
//! ```
//!
//! The rules (see [`rules`]) are repo-specific by design — a hand-rolled
//! lexer/line-scanner over `crates/*/src`, dependency-free so it runs in
//! the same offline environment as the build it gates. Regions are marked
//! in source (`// lint: supervisor`, `// lint: no-alloc`), waivers are
//! inline and must carry a reason (`// lint: allow(<rule>) — <why>`), and
//! grandfathered findings live in `crates/lint/baseline.json` — which this
//! workspace keeps **empty**: everything the tool found was fixed when it
//! landed.

#![forbid(unsafe_code)]

pub mod report;
pub mod rules;
pub mod scanner;

use std::fs;
use std::path::{Path, PathBuf};

use report::BaselineEntry;
use rules::{Finding, ALL_RULES};

/// A finding after baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// New: fails `--check`.
    New,
    /// Matched a baseline entry: reported, does not fail.
    Grandfathered,
}

/// Outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Every finding with its baseline status.
    pub findings: Vec<(Finding, Status)>,
    /// Baseline entries no finding matched (stale — must be removed).
    pub stale: Vec<BaselineEntry>,
    /// Files scanned (diagnostic).
    pub files: usize,
}

impl Outcome {
    /// Does this outcome fail `--check`?
    pub fn failed(&self) -> bool {
        !self.stale.is_empty() || self.findings.iter().any(|(_, s)| *s == Status::New)
    }

    pub fn new_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|(_, s)| *s == Status::New)
            .map(|(f, _)| f)
    }
}

/// Scans every workspace crate under `root/crates` and applies the rules.
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();

    // The workspace manifest is held to the same hygiene as crate manifests.
    let root_manifest = root.join("Cargo.toml");
    if let Ok(text) = fs::read_to_string(&root_manifest) {
        findings.extend(rules::check_manifest("Cargo.toml", &text));
    }

    for dir in &crate_dirs {
        let rel_dir = rel_path(root, dir);

        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest)
            .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
        findings.extend(rules::check_manifest(
            &format!("{rel_dir}/Cargo.toml"),
            &text,
        ));

        let crate_root = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|p| dir.join(p))
            .find(|p| p.is_file());

        let mut sources = Vec::new();
        collect_rs(&dir.join("src"), &mut sources);
        sources.sort();
        for source in sources {
            let rel = rel_path(root, &source);
            let text = fs::read_to_string(&source)
                .map_err(|e| format!("cannot read {}: {e}", source.display()))?;
            let scanned = scanner::scan_source(&rel, &text, &ALL_RULES);
            if Some(&source) == crate_root.as_ref() {
                findings.extend(rules::check_crate_root(&rel, &scanned));
            }
            findings.extend(rules::check_file(&scanned));
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Scans and compares against a baseline (empty slice = no baseline).
pub fn run(root: &Path, baseline: &[BaselineEntry]) -> Result<Outcome, String> {
    let findings = scan_workspace(root)?;
    let files = count_sources(root);
    let mut used = vec![false; baseline.len()];
    let mut out = Outcome {
        files,
        ..Outcome::default()
    };
    for f in findings {
        let hit = baseline
            .iter()
            .position(|b| b.rule == f.rule && b.file == f.file && b.key == f.key);
        match hit {
            Some(i) => {
                used[i] = true;
                out.findings.push((f, Status::Grandfathered));
            }
            None => out.findings.push((f, Status::New)),
        }
    }
    out.stale = baseline
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(b, _)| b.clone())
        .collect();
    Ok(out)
}

fn count_sources(root: &Path) -> usize {
    let mut sources = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            collect_rs(&entry.path().join("src"), &mut sources);
        }
    }
    sources.len()
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_are_slash_separated() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/core/src/serve.rs");
        assert_eq!(rel_path(root, p), "crates/core/src/serve.rs");
    }

    #[test]
    fn outcome_failure_logic() {
        let mut out = Outcome::default();
        assert!(!out.failed());
        out.stale.push(BaselineEntry {
            rule: "x".into(),
            file: "y".into(),
            key: "z".into(),
        });
        assert!(out.failed());
    }
}
