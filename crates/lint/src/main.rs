//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p he-lint -- --check                 # the CI gate
//! cargo run -p he-lint -- --json report.json      # machine-readable output
//! cargo run -p he-lint -- --write-baseline        # grandfather current findings
//! ```
//!
//! Flags:
//! - `--check`            exit non-zero on any new finding or stale baseline entry
//! - `--root <dir>`       workspace root (default: walk up from the cwd)
//! - `--baseline <file>`  baseline path (default: `<root>/crates/lint/baseline.json`)
//! - `--json <file>`      also write the findings as JSON
//! - `--write-baseline`   rewrite the baseline to the current findings and exit
//! - `--list-rules`       print the rule names and exit

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use he_lint::report::{baseline_to_json, parse_baseline, to_json};
use he_lint::rules::ALL_RULES;
use he_lint::{run, Status};

struct Options {
    check: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        root: None,
        baseline: None,
        json: None,
        write_baseline: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => opts.root = Some(PathBuf::from(args.next().ok_or("--root needs a path")?)),
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?))
            }
            "--json" => opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?)),
            other => return Err(format!("unknown flag `{other}` (see src/main.rs docs)")),
        }
    }
    Ok(opts)
}

/// The workspace root: walk up from the cwd to the first directory holding
/// both `Cargo.toml` and `crates/`; fall back to the source checkout this
/// binary was built from.
fn find_root(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(root) = explicit {
        return root;
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn main() -> ExitCode {
    match try_main() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("he-lint: {message}");
            ExitCode::FAILURE
        }
    }
}

fn try_main() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.list_rules {
        for rule in ALL_RULES {
            println!("{rule}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = find_root(opts.root);
    let baseline_path = opts
        .baseline
        .unwrap_or_else(|| root.join("crates/lint/baseline.json"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            parse_baseline(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?
        }
        Err(_) => Vec::new(),
    };

    let outcome = run(&root, &baseline)?;

    if opts.write_baseline {
        let findings: Vec<_> = outcome.findings.iter().map(|(f, _)| f.clone()).collect();
        std::fs::write(&baseline_path, baseline_to_json(&findings))
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "he-lint: wrote {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    for (f, status) in &outcome.findings {
        let tag = match status {
            Status::New => "",
            Status::Grandfathered => " (grandfathered)",
        };
        println!("{}:{}: [{}] {}{}", f.file, f.line, f.rule, f.message, tag);
    }
    for stale in &outcome.stale {
        println!(
            "{}: [{}] stale baseline entry (no longer matches): {}",
            stale.file, stale.rule, stale.key
        );
    }

    if let Some(json_path) = &opts.json {
        let findings: Vec<_> = outcome.findings.iter().map(|(f, _)| f.clone()).collect();
        std::fs::write(json_path, to_json(&findings))
            .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    }

    let new = outcome.new_findings().count();
    println!(
        "he-lint: {} file(s), {} finding(s) ({} new, {} grandfathered), {} stale baseline entr{}",
        outcome.files,
        outcome.findings.len(),
        new,
        outcome.findings.len() - new,
        outcome.stale.len(),
        if outcome.stale.len() == 1 { "y" } else { "ies" },
    );

    if opts.check && outcome.failed() {
        eprintln!("he-lint: --check failed (new findings or stale baseline entries above)");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
