//! Source preparation for the rule passes.
//!
//! The rules in this crate are line-oriented: each wants to ask "does this
//! *code* line contain token X" without being fooled by comments, string
//! literals, or doc examples. [`scan_source`] does one character-level pass
//! over a file and produces, per line:
//!
//! - the line's code text with every comment and string/char-literal body
//!   blanked to spaces (delimiters are kept so the shape of the line is
//!   preserved),
//! - the line's comment text with the code blanked (directives live here),
//! - the brace depth before and after the line (lexical scope tracking),
//! - whether the line sits inside a `#[cfg(test)]` module (rules skip
//!   test code — `unwrap` in a test is idiomatic, not a finding).
//!
//! The lexer handles line comments, nested block comments, string, raw
//! string (`r#"…"#`), byte-string and char literals, and disambiguates
//! `'a'` (char) from `'a` (lifetime/loop label) with two characters of
//! lookahead. It is deliberately *not* a full Rust parser: the rules are
//! heuristics tuned to this workspace's idioms, and the fixture corpus in
//! `fixtures/` pins their behaviour.
//!
//! Directives are line comments of the form:
//!
//! ```text
//! /​/ lint: supervisor            …  /​/ lint: end supervisor
//! /​/ lint: no-alloc              …  /​/ lint: end no-alloc
//! /​/ lint: allow(<rule>) — <reason>
//! ```
//!
//! A waiver without a reason is itself a finding (rule `directive`), as is
//! an unknown directive, an unmatched `end`, or a region left open at end
//! of file. Directives are only honoured in plain `//` comments — never in
//! doc comments, where they are prose about the tool, not instructions to
//! it.

use std::collections::HashMap;

/// One analysed source line.
#[derive(Debug)]
pub struct Line {
    /// Original text (used for reports and baseline keys).
    pub raw: String,
    /// Code with comments and literal bodies blanked to spaces.
    pub code: String,
    /// Comment text with code blanked to spaces.
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth_open: i32,
    /// Brace depth after the line.
    pub depth_close: i32,
    /// True inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// Marked region kinds (`// lint: supervisor`, `// lint: no-alloc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    Supervisor,
    NoAlloc,
}

impl Region {
    fn name(self) -> &'static str {
        match self {
            Region::Supervisor => "supervisor",
            Region::NoAlloc => "no-alloc",
        }
    }
}

/// A fully scanned file, ready for the rule passes.
#[derive(Debug)]
pub struct ScanFile {
    /// Workspace-relative path, `/`-separated (stable across hosts).
    pub rel: String,
    pub lines: Vec<Line>,
    /// 0-based line index → rules waived on that line (reason present).
    pub allows: HashMap<usize, Vec<String>>,
    /// Directive-syntax findings: (0-based line, message).
    pub directive_issues: Vec<(usize, String)>,
    /// 0-based inclusive line ranges marked `// lint: supervisor`.
    pub supervisor: Vec<(usize, usize)>,
    /// 0-based inclusive line ranges marked `// lint: no-alloc`.
    pub no_alloc: Vec<(usize, usize)>,
}

impl ScanFile {
    /// Is 0-based line `idx` inside a region of the given kind?
    pub fn in_region(&self, region: Region, idx: usize) -> bool {
        let ranges = match region {
            Region::Supervisor => &self.supervisor,
            Region::NoAlloc => &self.no_alloc,
        };
        ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Is rule `rule` waived on 0-based line `idx` (same line or the line
    /// directly above)?
    pub fn waived(&self, rule: &str, idx: usize) -> bool {
        let hit = |i: usize| {
            self.allows
                .get(&i)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        };
        hit(idx) || (idx > 0 && hit(idx - 1))
    }
}

/// Lexer mode for the character pass.
enum Mode {
    Code,
    LineComment,
    /// Block comment with nesting depth.
    BlockComment(u32),
    /// String literal; `true` while the next char is escaped.
    Str(bool),
    /// Raw string literal closed by `"` + this many `#`s.
    RawStr(u32),
}

/// Splits `text` into parallel code and comment streams (same length, same
/// newline positions); literal bodies are blanked in both.
fn split_code_comment(text: &str) -> (String, String) {
    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comment = String::with_capacity(text.len());
    let mut mode = Mode::Code;
    let mut i = 0;
    // Pushes one char to the chosen stream and a space (or newline) to the
    // other, keeping the two streams line-aligned.
    let both = |code: &mut String, comment: &mut String, c: char, to_code: bool| {
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
        } else if to_code {
            code.push(c);
            comment.push(' ');
        } else {
            code.push(' ');
            comment.push(c);
        }
    };
    while i < chars.len() {
        let c = chars[i];
        match mode {
            Mode::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    both(&mut code, &mut comment, '/', false);
                    both(&mut code, &mut comment, '/', false);
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    both(&mut code, &mut comment, ' ', false);
                    both(&mut code, &mut comment, ' ', false);
                    i += 2;
                    continue;
                }
                // Raw / byte-raw string starts: r"…", r#"…"#, br"…", b"…".
                if c == 'r' || c == 'b' {
                    let mut j = i;
                    if chars[j] == 'b' {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') {
                        j += 1;
                        let mut hashes = 0;
                        while chars.get(j + hashes as usize) == Some(&'#') {
                            hashes += 1;
                        }
                        if chars.get(j + hashes as usize) == Some(&'"') {
                            let prev_ident = i > 0 && is_ident_char(chars[i - 1]);
                            if !prev_ident {
                                for &ch in &chars[i..=(j + hashes as usize)] {
                                    both(&mut code, &mut comment, ch, true);
                                }
                                i = j + hashes as usize + 1;
                                mode = Mode::RawStr(hashes);
                                continue;
                            }
                        }
                    }
                }
                if c == '"' {
                    mode = Mode::Str(false);
                    both(&mut code, &mut comment, '"', true);
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal ('x', '\n', '\u{..}') vs lifetime ('a).
                    let is_char = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    both(&mut code, &mut comment, '\'', true);
                    i += 1;
                    if is_char {
                        while i < chars.len() && chars[i] != '\'' {
                            if chars[i] == '\\' && i + 1 < chars.len() {
                                both(&mut code, &mut comment, ' ', true);
                                i += 1;
                            }
                            both(&mut code, &mut comment, ' ', true);
                            i += 1;
                        }
                        if i < chars.len() {
                            both(&mut code, &mut comment, '\'', true);
                            i += 1;
                        }
                    }
                    continue;
                }
                both(&mut code, &mut comment, c, true);
                i += 1;
            }
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                }
                both(&mut code, &mut comment, c, false);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    both(&mut code, &mut comment, '/', false);
                    both(&mut code, &mut comment, '*', false);
                    i += 2;
                    continue;
                }
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    both(&mut code, &mut comment, '*', false);
                    both(&mut code, &mut comment, '/', false);
                    i += 2;
                    continue;
                }
                both(&mut code, &mut comment, c, false);
                i += 1;
            }
            Mode::Str(escaped) => {
                if escaped {
                    mode = Mode::Str(false);
                    both(&mut code, &mut comment, ' ', true);
                } else if c == '\\' {
                    mode = Mode::Str(true);
                    both(&mut code, &mut comment, ' ', true);
                } else if c == '"' {
                    mode = Mode::Code;
                    both(&mut code, &mut comment, '"', true);
                } else {
                    // Keep newlines (multi-line strings) but blank content.
                    both(
                        &mut code,
                        &mut comment,
                        if c == '\n' { '\n' } else { ' ' },
                        true,
                    );
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        both(&mut code, &mut comment, '"', true);
                        for _ in 0..hashes {
                            both(&mut code, &mut comment, '#', true);
                        }
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                        continue;
                    }
                }
                both(
                    &mut code,
                    &mut comment,
                    if c == '\n' { '\n' } else { ' ' },
                    true,
                );
                i += 1;
            }
        }
    }
    (code, comment)
}

pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses one line's comment text for a `lint:` directive, if any.
/// Returns `None` when the comment is absent, a doc comment, or unrelated.
fn directive_text(comment: &str) -> Option<&str> {
    let t = comment.trim();
    // Plain `//` only: doc comments (`///`, `//!`) are prose, not directives.
    let body = t.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    let body = body.trim_start();
    body.strip_prefix("lint:").map(str::trim)
}

/// Parsed directive.
enum Directive {
    Begin(Region),
    End(Region),
    /// Waived rules and whether a reason was given.
    Allow(Vec<String>, bool),
    Unknown(String),
}

fn parse_directive(text: &str) -> Directive {
    match text {
        "supervisor" => return Directive::Begin(Region::Supervisor),
        "no-alloc" => return Directive::Begin(Region::NoAlloc),
        "end supervisor" => return Directive::End(Region::Supervisor),
        "end no-alloc" => return Directive::End(Region::NoAlloc),
        _ => {}
    }
    if let Some(rest) = text.strip_prefix("allow(") {
        if let Some(close) = rest.find(')') {
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = rest[close + 1..].trim_start();
            let reason = tail.trim_start_matches(['—', '-', '–', ':']).trim();
            return Directive::Allow(rules, !reason.is_empty());
        }
    }
    Directive::Unknown(text.to_string())
}

/// Scans one file's source text into a [`ScanFile`].
pub fn scan_source(rel: &str, text: &str, known_rules: &[&str]) -> ScanFile {
    let (code_all, comment_all) = split_code_comment(text);
    let raw_lines: Vec<&str> = text.split('\n').collect();
    let code_lines: Vec<&str> = code_all.split('\n').collect();
    let comment_lines: Vec<&str> = comment_all.split('\n').collect();

    let mut lines = Vec::with_capacity(raw_lines.len());
    let mut depth: i32 = 0;
    for (idx, raw) in raw_lines.iter().enumerate() {
        let code = code_lines.get(idx).copied().unwrap_or("");
        let comment = comment_lines.get(idx).copied().unwrap_or("");
        let depth_open = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        lines.push(Line {
            raw: (*raw).to_string(),
            code: code.to_string(),
            comment: comment.to_string(),
            depth_open,
            depth_close: depth,
            in_test: false,
        });
    }

    // `#[cfg(test)] mod … { … }` region detection.
    let mut pending_cfg_test = false;
    let mut test_region: Option<i32> = None; // depth outside the test mod
    for line in lines.iter_mut() {
        if let Some(region_depth) = test_region {
            line.in_test = true;
            if line.depth_close <= region_depth {
                test_region = None;
            }
            continue;
        }
        let code = line.code.as_str();
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if pending_cfg_test {
            if code.contains("mod ") && code.contains('{') {
                line.in_test = true;
                test_region = Some(line.depth_open);
                pending_cfg_test = false;
            } else if code.contains(';') {
                // The attribute applied to a non-mod item (e.g. a use).
                pending_cfg_test = false;
            }
        }
    }

    // Directive pass.
    let mut allows: HashMap<usize, Vec<String>> = HashMap::new();
    let mut directive_issues: Vec<(usize, String)> = Vec::new();
    let mut supervisor: Vec<(usize, usize)> = Vec::new();
    let mut no_alloc: Vec<(usize, usize)> = Vec::new();
    let mut open: Vec<(Region, usize)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(text) = directive_text(&line.comment) else {
            continue;
        };
        match parse_directive(text) {
            Directive::Begin(region) => {
                if open.iter().any(|&(r, _)| r == region) {
                    directive_issues.push((
                        idx,
                        format!(
                            "nested `lint: {}` region (close the outer one first)",
                            region.name()
                        ),
                    ));
                } else {
                    open.push((region, idx));
                }
            }
            Directive::End(region) => {
                if let Some(pos) = open.iter().position(|&(r, _)| r == region) {
                    let (_, start) = open.remove(pos);
                    match region {
                        Region::Supervisor => supervisor.push((start, idx)),
                        Region::NoAlloc => no_alloc.push((start, idx)),
                    }
                } else {
                    directive_issues.push((
                        idx,
                        format!(
                            "`lint: end {}` without a matching open region",
                            region.name()
                        ),
                    ));
                }
            }
            Directive::Allow(rules, has_reason) => {
                if rules.is_empty() {
                    directive_issues.push((idx, "`lint: allow(…)` names no rule".to_string()));
                    continue;
                }
                for rule in &rules {
                    if !known_rules.contains(&rule.as_str()) {
                        directive_issues
                            .push((idx, format!("`lint: allow({rule})` names an unknown rule")));
                    }
                }
                if !has_reason {
                    directive_issues.push((
                        idx,
                        "waiver without a reason: write `lint: allow(<rule>) — <why>`".to_string(),
                    ));
                    continue;
                }
                allows.entry(idx).or_default().extend(rules);
            }
            Directive::Unknown(text) => {
                directive_issues.push((idx, format!("unknown lint directive: `{text}`")));
            }
        }
    }
    for (region, start) in open {
        directive_issues.push((
            start,
            format!("`lint: {}` region left open at end of file", region.name()),
        ));
    }

    ScanFile {
        rel: rel.to_string(),
        lines,
        allows,
        directive_issues,
        supervisor,
        no_alloc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // .unwrap() here\nlet y = 1;\n";
        let f = scan_source("t.rs", src, &["panic-path"]);
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert!(f.lines[1].code.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "let s = r#\"panic!()\"#; let c = '\\n'; fn f<'a>(x: &'a u8) {}\n";
        let f = scan_source("t.rs", src, &[]);
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("<'a>"), "{}", f.lines[0].code);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* a /* b */ still comment */ let z = 2;\n";
        let f = scan_source("t.rs", src, &[]);
        assert!(f.lines[0].code.contains("let z = 2;"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn depth_tracking_spans_lines() {
        let src = "fn f() {\n    if x {\n    }\n}\n";
        let f = scan_source("t.rs", src, &[]);
        assert_eq!(f.lines[0].depth_open, 0);
        assert_eq!(f.lines[0].depth_close, 1);
        assert_eq!(f.lines[1].depth_close, 2);
        assert_eq!(f.lines[3].depth_close, 0);
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan_source("t.rs", src, &[]);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn regions_and_waivers_parse() {
        let src = "\
// lint: supervisor
fn a() {}
// lint: end supervisor
// lint: allow(panic-path) — test hook, unreachable in production
let x = 1;
// lint: allow(panic-path)
let y = 2;
";
        let f = scan_source("t.rs", src, &["panic-path"]);
        assert_eq!(f.supervisor, vec![(0, 2)]);
        assert!(f.waived("panic-path", 4));
        assert!(
            !f.waived("panic-path", 6),
            "reason-less waiver must not waive"
        );
        assert_eq!(f.directive_issues.len(), 1);
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "/// lint: supervisor\nfn a() {}\n//! lint: no-alloc\n";
        let f = scan_source("t.rs", src, &[]);
        assert!(f.supervisor.is_empty());
        assert!(f.no_alloc.is_empty());
        assert!(f.directive_issues.is_empty());
    }

    #[test]
    fn unknown_directives_and_unclosed_regions_are_issues() {
        let src = "// lint: frobnicate\n// lint: no-alloc\nfn a() {}\n";
        let f = scan_source("t.rs", src, &[]);
        assert_eq!(f.directive_issues.len(), 2);
    }
}
