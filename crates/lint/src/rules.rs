//! The invariant checks.
//!
//! Each rule is a pass over a [`ScanFile`] (or, for crate hygiene, over a
//! manifest / crate root) producing [`Finding`]s. The rules encode
//! workspace history, not general Rust style:
//!
//! - `lock-discipline` (PR 2): a mutex guard's live range may not span a
//!   call into a transform/multiply entry point. The scratch-pool design
//!   holds locks only for pop/push; holding one across `forward_into` or
//!   `multiply_batch` serializes the whole fleet on one card's product.
//! - `panic-path` (PR 6): inside `// lint: supervisor` regions — the serve
//!   worker loop, flush stages and restart logic — no `unwrap`/`expect`/
//!   `panic!`/slice indexing. `catch_unwind` protects flushes from a dying
//!   *backend*; a panic in the supervisor itself hangs every client whose
//!   sink it holds.
//! - `sink-resolution` (PR 6): a constructed reply sink must reach a
//!   resolve/send/requeue on every path before scope exit, and must never
//!   be moved into a `catch_unwind` closure (an unwind there drops it and
//!   the waiting client blocks forever).
//! - `no-alloc` (PR 1): inside `// lint: no-alloc` regions — the transform
//!   kernels and scratch checkout — no allocating calls. This statically
//!   complements the counting-allocator test in `alloc_counting.rs`.
//! - `crate-hygiene` (PR 1): every crate root keeps `#![forbid(unsafe_code)]`
//!   and manifests only reference workspace/path dependencies — the build
//!   must stay offline-reproducible with the vendored subset.

use crate::scanner::{is_ident_char, Region, ScanFile};

/// Rule identifiers, as they appear in reports, waivers and the baseline.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const PANIC_PATH: &str = "panic-path";
pub const SINK_RESOLUTION: &str = "sink-resolution";
pub const NO_ALLOC: &str = "no-alloc";
pub const CRATE_HYGIENE: &str = "crate-hygiene";
pub const DIRECTIVE: &str = "directive";

/// All rules, in report order.
pub const ALL_RULES: [&str; 6] = [
    LOCK_DISCIPLINE,
    PANIC_PATH,
    SINK_RESOLUTION,
    NO_ALLOC,
    CRATE_HYGIENE,
    DIRECTIVE,
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// Baseline identity: stable under unrelated edits (trimmed line text,
    /// not the line number).
    pub key: String,
}

fn finding(rule: &'static str, file: &ScanFile, idx: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.rel.clone(),
        line: idx + 1,
        message,
        key: file.lines[idx].raw.trim().to_string(),
    }
}

/// Runs every source-level rule over one scanned file.
pub fn check_file(file: &ScanFile) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(lock_discipline(file));
    out.extend(panic_path(file));
    out.extend(sink_resolution(file));
    out.extend(no_alloc(file));
    for (idx, message) in &file.directive_issues {
        out.push(finding(DIRECTIVE, file, *idx, message.clone()));
    }
    out.retain(|f| f.rule == DIRECTIVE || !file.waived(f.rule, f.line - 1));
    out
}

// ---------------------------------------------------------------- helpers

/// Yields `(byte_pos, ident)` for each identifier in `code` directly
/// followed by `(` (a call or call-like macro path segment).
fn calls(code: &str) -> Vec<(usize, &str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_char(bytes[i] as char) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            if bytes.get(j) == Some(&b'(') {
                out.push((start, &code[start..i]));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Word-boundary containment: `word` appears in `code` not glued to other
/// identifier characters.
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// The identifier (or keyword) that ends at byte `end` (exclusive) after
/// skipping trailing spaces backwards.
fn word_before(code: &str, end: usize) -> &str {
    let bytes = code.as_bytes();
    let mut e = end;
    while e > 0 && bytes[e - 1] == b' ' {
        e -= 1;
    }
    let mut s = e;
    while s > 0 && is_ident_char(bytes[s - 1] as char) {
        s -= 1;
    }
    &code[s..e]
}

// --------------------------------------------------------- lock-discipline

/// Tokens whose presence in a `let` initializer makes it a candidate lock
/// guard binding.
const ACQUIRERS: [&str; 3] = [".lock()", "lock_or_recover(", "lock_state("];

/// Method names that keep a lock result a *guard* (adapters); any other
/// call after the acquirer means the guard is a statement temporary,
/// dropped at the `;`.
const GUARD_ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "into_inner"];

/// Transform/multiply entry points a live guard must not span.
fn is_entry_point(name: &str) -> bool {
    name.starts_with("multiply")
        || name.starts_with("convolve")
        || matches!(
            name,
            "forward_into" | "inverse_into" | "prepare" | "prepare_many"
        )
}

struct Guard {
    name: String,
    depth: i32,
    bound_at: usize,
}

fn lock_discipline(file: &ScanFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut idx = 0;
    while idx < file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test {
            guards.clear();
            idx += 1;
            continue;
        }
        let code = line.code.as_str();

        // Entry-point calls while any guard is live (skip the binding line
        // itself: the statement temporary case is handled by the adapter
        // analysis below).
        for (_, name) in calls(code) {
            if is_entry_point(name) {
                if let Some(guard) = guards.iter().find(|g| g.bound_at != idx) {
                    out.push(finding(
                        LOCK_DISCIPLINE,
                        file,
                        idx,
                        format!(
                            "`{name}(…)` called while lock guard `{}` (bound on line {}) is live — \
                             release the lock before entering a transform",
                            guard.name,
                            guard.bound_at + 1
                        ),
                    ));
                }
            }
        }

        // Explicit drops release guards.
        if code.contains("drop(") {
            for (pos, name) in calls(code) {
                if name == "drop" {
                    let arg = code[pos + 4..]
                        .trim_start_matches('(')
                        .trim_start()
                        .trim_start_matches("mut ");
                    let arg_name: String = arg.chars().take_while(|&c| is_ident_char(c)).collect();
                    guards.retain(|g| g.name != arg_name);
                }
            }
        }

        // New guard bindings: assemble the full `let … ;` statement.
        if has_word(code, "let") && ACQUIRERS.iter().any(|a| code.contains(a)) {
            let mut stmt = String::new();
            let mut last = idx;
            for j in idx..file.lines.len().min(idx + 15) {
                stmt.push_str(&file.lines[j].code);
                stmt.push(' ');
                last = j;
                if file.lines[j].code.contains(';') {
                    break;
                }
            }
            if let Some(name) = guard_binding(&stmt) {
                guards.push(Guard {
                    name,
                    depth: file.lines[last].depth_close,
                    bound_at: idx,
                });
            }
        }

        guards.retain(|g| line.depth_close >= g.depth);
        idx += 1;
    }
    out
}

/// If `stmt` (one flattened `let` statement) binds a guard that outlives
/// the statement, returns the bound name.
///
/// A binding is a guard only when, after the *last* acquirer token, every
/// further method call is a guard adapter (`unwrap`, `unwrap_or_else`,
/// `into_inner`, …). Anything else (`.pop()`, `.snapshot()`, `.take(…)`)
/// consumes the guard within the statement — it is a temporary, released
/// at the `;`, and holding it never spans the statement boundary.
fn guard_binding(stmt: &str) -> Option<String> {
    let after = ACQUIRERS
        .iter()
        .filter_map(|a| stmt.rfind(a).map(|p| p + a.len()))
        .max()?;
    let tail = &stmt[after..];
    for (_, name) in calls(tail) {
        if !GUARD_ADAPTERS.contains(&name) && !name.ends_with("_inner") {
            return None;
        }
    }
    // Bound name: the identifier after `let` (skipping `mut`).
    let let_pos = stmt.find("let ")?;
    let rest = stmt[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

// -------------------------------------------------------------- panic-path

/// Rust keywords that may directly precede `[` without it being indexing.
const NON_INDEX_KEYWORDS: [&str; 14] = [
    "in", "return", "match", "if", "else", "while", "loop", "for", "break", "continue", "move",
    "ref", "as", "where",
];

fn panic_path(file: &ScanFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !file.in_region(Region::Supervisor, idx) {
            continue;
        }
        let code = line.code.as_str();
        for (token, what) in [
            (".unwrap()", "`unwrap()`"),
            (".expect(", "`expect(…)`"),
            ("panic!", "`panic!`"),
            ("unreachable!", "`unreachable!`"),
            ("todo!", "`todo!`"),
            ("unimplemented!", "`unimplemented!`"),
        ] {
            if code.contains(token) {
                out.push(finding(
                    PANIC_PATH,
                    file,
                    idx,
                    format!(
                        "{what} inside a supervisor region — a panic here hangs every \
                         client whose sink this worker holds; use a fallible pattern"
                    ),
                ));
            }
        }
        // Slice/array indexing: `[` whose preceding token is an expression.
        let bytes = code.as_bytes();
        for (pos, &b) in bytes.iter().enumerate() {
            if b != b'[' || pos == 0 {
                continue;
            }
            let mut p = pos;
            while p > 0 && bytes[p - 1] == b' ' {
                p -= 1;
            }
            if p == 0 {
                continue;
            }
            let prev = bytes[p - 1] as char;
            if prev == '!' {
                continue; // vec![…] and friends
            }
            if !(is_ident_char(prev) || prev == ')' || prev == ']') {
                continue; // type position, slice pattern, attribute…
            }
            let word = word_before(code, p);
            if NON_INDEX_KEYWORDS.contains(&word) {
                continue;
            }
            out.push(finding(
                PANIC_PATH,
                file,
                idx,
                "slice indexing inside a supervisor region — a stale index panics the \
                 worker; use `.get(…)`"
                    .to_string(),
            ));
            break; // one indexing finding per line is enough
        }
    }
    out
}

// --------------------------------------------------------- sink-resolution

/// Initializer tokens that construct a reply sink / ticket sender.
const SINK_MAKERS: [&str; 3] = ["ReplySink::", "CompletionSink", "mpsc::channel()"];

/// Tokens that, mentioned inside a `catch_unwind(…)` span, mean a sink is
/// exposed to an unwind (and would be dropped unresolved).
const UNWIND_SENSITIVE: [&str; 3] = ["ReplySink", "CompletionSink", ".reply"];

struct Sink {
    name: String,
    depth: i32,
    bound_at: usize,
}

fn sink_resolution(file: &ScanFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut sinks: Vec<Sink> = Vec::new();
    // Byte-depth of `catch_unwind(` paren spans currently open.
    let mut unwind_depth: i32 = -1;
    let mut paren_depth: i32 = 0;

    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            sinks.clear();
            continue;
        }
        let code = line.code.as_str();

        // --- catch_unwind containment -------------------------------
        {
            let bytes = code.as_bytes();
            let mut i = 0;
            while i < bytes.len() {
                if unwind_depth < 0 {
                    if let Some(pos) = code[i..].find("catch_unwind(") {
                        let at = i + pos;
                        // Count parens up to and including the opener.
                        for &b in &bytes[i..at] {
                            match b {
                                b'(' => paren_depth += 1,
                                b')' => paren_depth -= 1,
                                _ => {}
                            }
                        }
                        unwind_depth = paren_depth;
                        paren_depth += 1; // the `(` of catch_unwind
                        i = at + "catch_unwind(".len();
                        continue;
                    }
                    for &b in &bytes[i..] {
                        match b {
                            b'(' => paren_depth += 1,
                            b')' => paren_depth -= 1,
                            _ => {}
                        }
                    }
                    i = bytes.len();
                } else {
                    // Inside the catch_unwind call: scan to its close.
                    let start = i;
                    let mut end = bytes.len();
                    for (k, &b) in bytes.iter().enumerate().skip(i) {
                        match b {
                            b'(' => paren_depth += 1,
                            b')' => {
                                paren_depth -= 1;
                                if paren_depth == unwind_depth {
                                    end = k;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    let span = &code[start..end];
                    for token in UNWIND_SENSITIVE {
                        if span.contains(token) {
                            out.push(finding(
                                SINK_RESOLUTION,
                                file,
                                idx,
                                format!(
                                    "`{token}` inside a `catch_unwind` closure — an unwind \
                                     drops the sink and its client waits forever; resolve \
                                     sinks outside the contained call"
                                ),
                            ));
                            break;
                        }
                    }
                    if end < bytes.len() {
                        unwind_depth = -1;
                        i = end + 1;
                    } else {
                        i = bytes.len();
                    }
                }
            }
        }

        // --- per-binding path tracking ------------------------------
        // Mentions resolve sinks; `return`/`?` with an unresolved,
        // unmentioned sink is a leak; so is scope exit.
        sinks.retain(|sink| {
            if has_word(code, &sink.name) && idx != sink.bound_at {
                return false; // consumed (sent / enqueued / moved on)
            }
            let escapes = has_word(code, "return") || has_try_operator(code);
            if escapes && idx != sink.bound_at {
                out.push(finding(
                    SINK_RESOLUTION,
                    file,
                    idx,
                    format!(
                        "early exit with reply sink `{}` (bound on line {}) unresolved — \
                         every path must send, requeue or hand off the sink",
                        sink.name,
                        sink.bound_at + 1
                    ),
                ));
                return false;
            }
            if line.depth_close < sink.depth {
                out.push(finding(
                    SINK_RESOLUTION,
                    file,
                    idx,
                    format!(
                        "scope ends with reply sink `{}` (bound on line {}) unresolved — \
                         the waiting client would never complete",
                        sink.name,
                        sink.bound_at + 1
                    ),
                ));
                return false;
            }
            true
        });

        // New sink bindings.
        if has_word(code, "let") && SINK_MAKERS.iter().any(|m| code.contains(m)) {
            if let Some(name) = sink_binding(code) {
                sinks.push(Sink {
                    name,
                    depth: line.depth_close,
                    bound_at: idx,
                });
            }
        }
    }
    out
}

/// The bound name to track for a sink-constructing `let`. For a
/// `let (tx, rx) = mpsc::channel()` tuple, only the sender half matters
/// (dropping a receiver is the *client's* choice, not a leak).
fn sink_binding(code: &str) -> Option<String> {
    let let_pos = code.find("let ")?;
    let rest = code[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix('(').unwrap_or(rest).trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() || name.starts_with('_') {
        None
    } else {
        Some(name)
    }
}

/// A postfix `?` operator (not `?Sized` in a bound).
fn has_try_operator(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'?' && i > 0 {
            let prev = bytes[i - 1] as char;
            if is_ident_char(prev) || prev == ')' || prev == ']' {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------- no-alloc

const ALLOC_TOKENS: [&str; 16] = [
    "Vec::new(",
    "VecDeque::new(",
    "String::new(",
    "Box::new(",
    "Arc::new(",
    "Rc::new(",
    "HashMap::new(",
    "HashSet::new(",
    "vec!",
    ".to_vec()",
    ".to_owned()",
    ".to_string()",
    "format!",
    ".collect(",
    ".clone()",
    "with_capacity(",
];

fn no_alloc(file: &ScanFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !file.in_region(Region::NoAlloc, idx) {
            continue;
        }
        for token in ALLOC_TOKENS {
            if line.code.contains(token) {
                out.push(finding(
                    NO_ALLOC,
                    file,
                    idx,
                    format!(
                        "`{token}` inside a no-alloc region — the warm path performs zero \
                         heap allocations per product (see tests/alloc_counting.rs)",
                        token = token.trim_matches(['.', '('])
                    ),
                ));
                break; // one finding per line
            }
        }
    }
    out
}

// ----------------------------------------------------------- crate-hygiene

/// Dependency names the workspace vendors or owns; anything else in a
/// manifest is a new external dependency and breaks the offline build.
fn vendored_dep(name: &str) -> bool {
    name.starts_with("he-") || matches!(name, "rand" | "proptest" | "criterion" | "crossbeam")
}

/// Checks one crate root source (`lib.rs`/`main.rs`) for the mandatory
/// `#![forbid(unsafe_code)]`.
pub fn check_crate_root(rel: &str, file: &ScanFile) -> Vec<Finding> {
    let present = file
        .lines
        .iter()
        .any(|l| l.code.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if present {
        return Vec::new();
    }
    vec![Finding {
        rule: CRATE_HYGIENE,
        file: rel.to_string(),
        line: 1,
        message: "crate root is missing `#![forbid(unsafe_code)]` — every crate in this \
                  workspace forbids unsafe code"
            .to_string(),
        key: "missing #![forbid(unsafe_code)]".to_string(),
    }]
}

/// Checks one `Cargo.toml` for non-vendored dependencies.
pub fn check_manifest(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            let section = line.trim_matches(['[', ']']);
            in_deps = section == "dependencies"
                || section == "dev-dependencies"
                || section == "build-dependencies"
                || section.ends_with(".dependencies");
            continue;
        }
        if !in_deps || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim().trim_matches('"');
        let value = value.trim();
        let mut flag = |why: &str| {
            out.push(Finding {
                rule: CRATE_HYGIENE,
                file: rel.to_string(),
                line: idx + 1,
                message: format!(
                    "dependency `{name}` {why} — this workspace builds offline from \
                     vendored/path dependencies only"
                ),
                key: raw.trim().to_string(),
            });
        };
        if value.contains("version")
            || value.contains("git =")
            || value.contains("registry =")
            || value.starts_with('"')
        {
            flag("references a registry/git source");
        } else if !vendored_dep(name) {
            flag("is not part of the vendored set");
        } else if !value.contains("workspace = true") && !value.contains("path =") {
            flag("must use `workspace = true` or a `path =` source");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_source;

    fn scan(src: &str) -> ScanFile {
        scan_source("test.rs", src, &ALL_RULES)
    }

    #[test]
    fn entry_points_match_families() {
        assert!(is_entry_point("multiply"));
        assert!(is_entry_point("multiply_batch"));
        assert!(is_entry_point("convolve_into"));
        assert!(is_entry_point("forward_into"));
        assert!(!is_entry_point("operands"));
        assert!(!is_entry_point("eligible"));
    }

    #[test]
    fn statement_temporary_is_not_a_guard() {
        assert_eq!(guard_binding("let x = m.lock().unwrap().pop();"), None);
        assert_eq!(
            guard_binding(
                "let pins = self.reg.lock().unwrap_or_else(|e| e.into_inner()).snapshot();"
            ),
            None
        );
        assert_eq!(
            guard_binding("let mut g = m.lock().unwrap();"),
            Some("g".to_string())
        );
        assert_eq!(
            guard_binding("let mut state = lock_or_recover(&self.state);"),
            Some("state".to_string())
        );
    }

    #[test]
    fn guard_across_transform_is_flagged_and_drop_releases() {
        let src = "\
fn bad(m: &M, plan: &P, data: &mut [u64]) {
    let guard = m.lock().unwrap();
    plan.forward_into(data);
}
fn good(m: &M, plan: &P, data: &mut [u64]) {
    let guard = m.lock().unwrap();
    drop(guard);
    plan.forward_into(data);
}
";
        let f = scan(src);
        let findings = lock_discipline(&f);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn indexing_heuristics() {
        let src = "\
// lint: supervisor
fn f(v: &[u64], i: usize) {
    let a = v[i];
    let b = vec![0u64; 4];
    for side in [1, 2] { let _ = side; }
    let c = v.get(i);
}
// lint: end supervisor
";
        let f = scan(src);
        let findings = panic_path(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "\
// lint: supervisor
fn f(m: &M) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    let h = m.result.unwrap_or_default();
    let i = m.count.unwrap_or(0);
}
// lint: end supervisor
";
        let f = scan(src);
        assert!(panic_path(&f).is_empty());
    }

    #[test]
    fn sink_leak_on_early_return_and_scope_exit() {
        let src = "\
fn leak(tx: Sender, flag: bool) {
    let reply = ReplySink::Ticket(tx);
    if flag {
        return;
    }
}
";
        let f = scan(src);
        let findings = sink_resolution(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn sink_resolved_on_all_paths_is_clean() {
        let src = "\
fn ok(tx: Sender, flag: bool) {
    let reply = ReplySink::Ticket(tx);
    if flag {
        reply.send(Err(closed()));
        return;
    }
    reply.send(Ok(product()));
}
fn ticket(&self) -> Result<(), ServeError> {
    let (reply, rx) = mpsc::channel();
    self.enqueue(ReplySink::Ticket(reply))?;
    Ok(rx)
}
";
        let f = scan(src);
        assert!(sink_resolution(&f).is_empty());
    }

    #[test]
    fn sink_inside_catch_unwind_is_flagged() {
        let src = "\
fn contain(job: Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| job.reply.send(Ok(()))));
}
fn fine(job: &Job) {
    let outcome = catch_unwind(AssertUnwindSafe(|| backend.step()));
    job.reply.send(outcome);
}
";
        let f = scan(src);
        let findings = sink_resolution(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn alloc_tokens_only_fire_inside_regions() {
        let src = "\
fn cold() -> Vec<u64> { Vec::new() }
// lint: no-alloc
fn warm(buf: &mut [u64]) {
    let staged: Vec<u64> = buf.iter().copied().collect();
}
// lint: end no-alloc
";
        let f = scan(src);
        let findings = no_alloc(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn waiver_suppresses_a_finding() {
        let src = "\
// lint: no-alloc
fn warm() {
    // lint: allow(no-alloc) — cold init path, runs once per plan
    let table = Vec::new();
}
// lint: end no-alloc
";
        let f = scan(src);
        assert!(check_file(&f).is_empty(), "{:?}", check_file(&f));
    }

    #[test]
    fn manifest_rules() {
        let good = "[dependencies]\nhe-ntt = { workspace = true }\nrand = { path = \"../x\" }\n";
        assert!(check_manifest("a/Cargo.toml", good).is_empty());
        let bad = "[dependencies]\nserde = \"1.0\"\ntokio = { version = \"1\" }\n";
        assert_eq!(check_manifest("b/Cargo.toml", bad).len(), 2);
        let sneaky = "[dev-dependencies]\nleftpad = { path = \"../leftpad\" }\n";
        assert_eq!(check_manifest("c/Cargo.toml", sneaky).len(), 1);
    }

    #[test]
    fn crate_root_forbid_check() {
        let with = scan("#![forbid(unsafe_code)]\nfn x() {}\n");
        assert!(check_crate_root("a/src/lib.rs", &with).is_empty());
        let without = scan("fn x() {}\n");
        assert_eq!(check_crate_root("b/src/lib.rs", &without).len(), 1);
    }
}
