//! Self-tests: the fixture corpus and the workspace gate.
//!
//! Two directions, both load-bearing:
//! - every `*_bad.rs` fixture triggers **exactly** its rule (a rule that
//!   silently stops firing, or starts firing other rules' tokens, breaks
//!   this suite);
//! - every `*_clean.rs` fixture passes **all** rules;
//! - the workspace itself scans clean against an **empty** baseline — the
//!   invariants the tool encodes actually hold in this tree.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use he_lint::report::parse_baseline;
use he_lint::rules::{self, Finding, ALL_RULES};
use he_lint::scanner::scan_source;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn scan_fixture(name: &str) -> Vec<Finding> {
    let path = fixtures_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let scanned = scan_source(name, &text, &ALL_RULES);
    rules::check_file(&scanned)
}

fn rules_fired(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

/// A bad fixture must produce at least one finding, all under its own rule.
fn assert_exactly(name: &str, rule: &str) {
    let findings = scan_fixture(name);
    assert!(
        !findings.is_empty(),
        "{name}: expected findings for rule `{rule}`, got none"
    );
    let fired = rules_fired(&findings);
    assert_eq!(
        fired,
        BTreeSet::from([rule]),
        "{name}: expected only `{rule}`, got {findings:#?}"
    );
}

fn assert_clean(name: &str) {
    let findings = scan_fixture(name);
    assert!(
        findings.is_empty(),
        "{name}: expected clean, got {findings:#?}"
    );
}

#[test]
fn lock_discipline_fixture_fires_exactly() {
    assert_exactly("lock_discipline_bad.rs", "lock-discipline");
}

#[test]
fn panic_path_fixture_fires_exactly() {
    assert_exactly("panic_path_bad.rs", "panic-path");
}

#[test]
fn sink_resolution_fixture_fires_exactly() {
    assert_exactly("sink_resolution_bad.rs", "sink-resolution");
}

#[test]
fn no_alloc_fixture_fires_exactly() {
    assert_exactly("no_alloc_bad.rs", "no-alloc");
}

#[test]
fn directive_fixture_fires_exactly() {
    assert_exactly("directive_bad.rs", "directive");
}

#[test]
fn crate_hygiene_fixture_fires_exactly() {
    let dir = fixtures_dir().join("hygiene_bad");
    let manifest = std::fs::read_to_string(dir.join("Cargo.toml.test")).expect("manifest");
    let manifest_findings = rules::check_manifest("hygiene_bad/Cargo.toml", &manifest);
    assert_eq!(
        manifest_findings.len(),
        3,
        "serde, tokio and leftpad must each be flagged: {manifest_findings:#?}"
    );

    let root = std::fs::read_to_string(dir.join("src/lib.rs")).expect("crate root");
    let scanned = scan_source("hygiene_bad/src/lib.rs", &root, &ALL_RULES);
    let root_findings = rules::check_crate_root("hygiene_bad/src/lib.rs", &scanned);
    assert_eq!(root_findings.len(), 1, "missing forbid must be flagged");

    let all: Vec<Finding> = manifest_findings.into_iter().chain(root_findings).collect();
    assert_eq!(rules_fired(&all), BTreeSet::from(["crate-hygiene"]));
}

#[test]
fn clean_fixtures_pass_every_rule() {
    assert_clean("lock_discipline_clean.rs");
    assert_clean("panic_path_clean.rs");
    assert_clean("sink_resolution_clean.rs");
    assert_clean("no_alloc_clean.rs");
    assert_clean("directive_clean.rs");

    let dir = fixtures_dir().join("hygiene_clean");
    let manifest = std::fs::read_to_string(dir.join("Cargo.toml.test")).expect("manifest");
    assert!(rules::check_manifest("hygiene_clean/Cargo.toml", &manifest).is_empty());
    let root = std::fs::read_to_string(dir.join("src/lib.rs")).expect("crate root");
    let scanned = scan_source("hygiene_clean/src/lib.rs", &root, &ALL_RULES);
    assert!(rules::check_crate_root("hygiene_clean/src/lib.rs", &scanned).is_empty());
}

/// The gate itself: the whole workspace scans clean, and the checked-in
/// baseline is (and stays) empty.
#[test]
fn workspace_scans_clean_with_an_empty_baseline() {
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("crates/lint/baseline.json"))
        .expect("baseline.json present");
    let baseline = parse_baseline(&baseline_text).expect("baseline parses");
    assert!(
        baseline.is_empty(),
        "the baseline must stay empty — fix findings instead of grandfathering them"
    );

    let outcome = he_lint::run(&root, &baseline).expect("workspace scan");
    assert!(outcome.files > 20, "sanity: the scan saw the workspace");
    let new: Vec<_> = outcome.new_findings().collect();
    assert!(new.is_empty(), "workspace findings: {new:#?}");
    assert!(outcome.stale.is_empty());
}
