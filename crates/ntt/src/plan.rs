//! A common interface over the transform implementations, and automatic
//! plan selection.

use he_field::Fp;

use crate::error::NttError;
use crate::mixed::MixedRadixPlan;
use crate::plan64k::{Ntt64k, N64K};
use crate::radix2::Radix2Plan;
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;
use crate::sixstep::SixStepPlan;

/// A planned transform of fixed length with forward and inverse passes.
///
/// Implemented by [`Radix2Plan`], [`Radix2kPlan`], [`MixedRadixPlan`],
/// [`SixStepPlan`] and [`Ntt64k`], so callers can switch strategies (or
/// accept any via `Box<dyn Transform>`).
///
/// The `*_into` methods are the in-place, scratch-staged forms; every
/// implementation overrides the defaults with its allocation-free path, so
/// trait-object callers (like the SSA multiplier's engine) keep the
/// zero-allocation property.
pub trait Transform {
    /// The transform length.
    fn len(&self) -> usize;

    /// Whether the plan is empty (lengths are ≥ 2, so never).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes held by the plan's precomputed twiddle tables. Tables are
    /// computed once at plan construction and shared by every transform —
    /// never duplicated per scratch — so this is the plan's whole
    /// resident table footprint regardless of how many callers use it.
    fn table_bytes(&self) -> usize;

    /// Forward transform, natural order in and out.
    fn forward(&self, input: &[Fp]) -> Vec<Fp>;

    /// Inverse transform including the `1/n` scaling.
    fn inverse(&self, input: &[Fp]) -> Vec<Fp>;

    /// In-place forward transform staging through `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        let _ = scratch;
        let out = self.forward(data);
        data.copy_from_slice(&out);
    }

    /// In-place inverse transform (with the `1/n` scaling) staging through
    /// `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        let _ = scratch;
        let out = self.inverse(data);
        data.copy_from_slice(&out);
    }
}

impl Transform for Radix2Plan {
    fn len(&self) -> usize {
        Radix2Plan::len(self)
    }

    fn table_bytes(&self) -> usize {
        Radix2Plan::table_bytes(self)
    }

    fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        Radix2Plan::forward(self, input)
    }

    fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        Radix2Plan::inverse(self, input)
    }

    fn forward_into(&self, data: &mut [Fp], _scratch: &mut NttScratch) {
        Radix2Plan::forward_in_place(self, data).expect("length checked by caller");
    }

    fn inverse_into(&self, data: &mut [Fp], _scratch: &mut NttScratch) {
        Radix2Plan::inverse_in_place(self, data).expect("length checked by caller");
    }
}

impl Transform for Radix2kPlan {
    fn len(&self) -> usize {
        Radix2kPlan::len(self)
    }

    fn table_bytes(&self) -> usize {
        Radix2kPlan::table_bytes(self)
    }

    fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        Radix2kPlan::forward(self, input)
    }

    fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        Radix2kPlan::inverse(self, input)
    }

    fn forward_into(&self, data: &mut [Fp], _scratch: &mut NttScratch) {
        Radix2kPlan::forward_in_place(self, data).expect("length checked by caller");
    }

    fn inverse_into(&self, data: &mut [Fp], _scratch: &mut NttScratch) {
        Radix2kPlan::inverse_in_place(self, data).expect("length checked by caller");
    }
}

impl Transform for MixedRadixPlan {
    fn len(&self) -> usize {
        MixedRadixPlan::len(self)
    }

    fn table_bytes(&self) -> usize {
        MixedRadixPlan::table_bytes(self)
    }

    fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        MixedRadixPlan::forward(self, input)
    }

    fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        MixedRadixPlan::inverse(self, input)
    }

    fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        MixedRadixPlan::forward_into(self, data, scratch);
    }

    fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        MixedRadixPlan::inverse_into(self, data, scratch);
    }
}

impl Transform for Ntt64k {
    fn len(&self) -> usize {
        Ntt64k::len(self)
    }

    fn table_bytes(&self) -> usize {
        Ntt64k::table_bytes(self)
    }

    fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        Ntt64k::forward(self, input)
    }

    fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        Ntt64k::inverse(self, input)
    }

    fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        Ntt64k::forward_into(self, data, scratch);
    }

    fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        Ntt64k::inverse_into(self, data, scratch);
    }
}

impl Transform for SixStepPlan {
    fn len(&self) -> usize {
        SixStepPlan::len(self)
    }

    fn table_bytes(&self) -> usize {
        SixStepPlan::table_bytes(self)
    }

    fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        SixStepPlan::forward(self, input)
    }

    fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        SixStepPlan::inverse(self, input)
    }

    fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        SixStepPlan::forward_into(self, data, scratch);
    }

    fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        SixStepPlan::inverse_into(self, data, scratch);
    }
}

/// Plans the preferred transform for length `n`: the paper-shaped
/// [`Ntt64k`] wrapper at 64K and the radix-2^k stage compiler
/// ([`Radix2kPlan`]) for every other power of two — both execute the
/// same compiled-stage engine; 64K keeps its dedicated type because the
/// hardware models key off [`Ntt64k::operation_counts`].
///
/// # Errors
///
/// Returns [`NttError::UnsupportedSize`] if `n` is not a supported power
/// of two.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::plan::plan_for;
///
/// let plan = plan_for(4096)?;
/// let data: Vec<Fp> = (0..4096).map(Fp::new).collect();
/// assert_eq!(plan.inverse(&plan.forward(&data)), data);
/// # Ok::<(), he_ntt::NttError>(())
/// ```
pub fn plan_for(n: usize) -> Result<Box<dyn Transform>, NttError> {
    if n == N64K {
        return Ok(Box::new(Ntt64k::new()));
    }
    if !n.is_power_of_two() || n < 2 {
        return Err(NttError::UnsupportedSize {
            n,
            reason: "plan_for supports power-of-two lengths >= 2",
        });
    }
    Ok(Box::new(Radix2kPlan::new(n)?))
}

/// Greedy factorization into the hardware radices `{64, 32, 16, 8}`, if
/// one exists (i.e. `n = 2^k` with `k ≥ 3`).
pub fn high_radix_factorization(n: usize) -> Option<Vec<usize>> {
    if !n.is_power_of_two() || n < 8 {
        return None;
    }
    let mut k = n.trailing_zeros();
    let mut radices = Vec::new();
    while k > 0 {
        // Pick the largest radix that leaves a factorable remainder
        // (remaining exponent 0 or ≥ 3).
        let step = [6u32, 5, 4, 3]
            .into_iter()
            .find(|&s| s <= k && (k - s == 0 || k - s >= 3))?;
        radices.push(1usize << step);
        k -= step;
    }
    Some(radices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use he_field::roots;

    #[test]
    fn factorization_covers_all_exponents() {
        for k in 3..=26u32 {
            let n = 1usize << k;
            let radices = high_radix_factorization(n).unwrap_or_else(|| panic!("k = {k}"));
            assert_eq!(radices.iter().product::<usize>(), n, "k = {k}");
            assert!(
                radices.iter().all(|r| [8, 16, 32, 64].contains(r)),
                "k = {k}"
            );
        }
        assert_eq!(high_radix_factorization(4), None);
        assert_eq!(high_radix_factorization(12), None);
    }

    #[test]
    fn plan_for_picks_correct_lengths() {
        for n in [2usize, 4, 8, 64, 1024, 65_536] {
            let plan = plan_for(n).unwrap();
            assert_eq!(plan.len(), n);
            assert!(!plan.is_empty());
        }
        assert!(plan_for(0).is_err());
        assert!(plan_for(100).is_err());
    }

    #[test]
    fn all_plans_agree_through_the_trait() {
        let n = 512;
        let input: Vec<Fp> = (0..n as u64).map(|i| Fp::new(i * 17 + 5)).collect();
        let expected = naive::dft(&input, roots::root_of_unity(n as u64).unwrap());
        let plans: Vec<Box<dyn Transform>> = vec![
            Box::new(Radix2Plan::new(n).unwrap()),
            Box::new(MixedRadixPlan::new(&[64, 8]).unwrap()),
            plan_for(n).unwrap(),
        ];
        for plan in &plans {
            assert_eq!(plan.forward(&input), expected);
            assert_eq!(plan.inverse(&plan.forward(&input)), input);
        }
    }

    #[test]
    fn trait_objects_roundtrip_at_64k() {
        let plan = plan_for(N64K).unwrap();
        let mut v = vec![Fp::ZERO; N64K];
        v[1] = Fp::new(7);
        v[99] = Fp::new(13);
        assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }
}
