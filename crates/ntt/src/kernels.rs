//! Shift-only small transforms (paper Eq. 3).
//!
//! For any `n` dividing 192, the canonical `n`-th root of unity is the power
//! of two `2^{192/n}`, so the full `n`-point DFT
//! `A[k] = Σ_i a[i]·(2^{192/n})^{ik}` uses **only shifts and additions** —
//! this is what makes the FFGA's radix-64 unit multiplier-free. The paper
//! notes the unit "can be adapted, with minor modifications, to compute also
//! Radix-8, Radix-16, and Radix-32 FFTs"; all four sizes are provided here.
//!
//! The 64-point kernel additionally uses the paper's Eq. 5 two-level
//! decomposition (8 × 8) to share first-stage partial sums, reducing the
//! shift/add count from `64·64` to `2·64·8` — the same restructuring the
//! optimized hardware unit exploits.

use he_field::{Fp, U192};

use crate::error::NttError;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform with root `2^{192/n}`.
    Forward,
    /// Inverse (unscaled) transform with root `2^{-192/n}`.
    Inverse,
}

/// Sizes supported by the shift-only kernels.
pub const SHIFT_KERNEL_SIZES: [usize; 4] = [8, 16, 32, 64];

/// Whether `n` has a shift-only kernel.
pub fn supports(n: usize) -> bool {
    SHIFT_KERNEL_SIZES.contains(&n)
}

/// Computes an `n`-point DFT with shift-only twiddles, `n ∈ {8, 16, 32, 64}`.
///
/// Natural order in and out; the inverse direction is **unscaled** (no
/// `1/n` factor), matching what the hardware unit produces.
///
/// # Errors
///
/// Returns [`NttError::UnsupportedSize`] for other sizes.
///
/// ```
/// use he_field::{roots, Fp};
/// use he_ntt::kernels::{ntt_small, Direction};
/// use he_ntt::naive;
///
/// let input: Vec<Fp> = (0..64).map(Fp::new).collect();
/// let out = ntt_small(&input, Direction::Forward)?;
/// assert_eq!(out, naive::dft(&input, roots::OMEGA_64));
/// # Ok::<(), he_ntt::NttError>(())
/// ```
pub fn ntt_small(input: &[Fp], direction: Direction) -> Result<Vec<Fp>, NttError> {
    match input.len() {
        64 => Ok(ntt64(input, direction)),
        8 | 16 | 32 => Ok(ntt_direct_shift(input, direction)),
        n => Err(NttError::UnsupportedSize {
            n,
            reason: "shift-only kernels exist for 8, 16, 32 and 64 points",
        }),
    }
}

/// Direct shift-based DFT for `n | 192`: `A[k] = Σ_i a[i]·2^{(192/n)·ik}`.
///
/// Quadratic in `n` but multiplier-free; used for the 8/16/32-point sizes
/// where sharing buys little.
fn ntt_direct_shift(input: &[Fp], direction: Direction) -> Vec<Fp> {
    let n = input.len() as u32;
    debug_assert!(192 % n == 0);
    let step = 192 / n;
    (0..n)
        .map(|k| {
            let mut acc = U192::ZERO;
            for (i, &a) in input.iter().enumerate() {
                let e = (step as u64 * i as u64 * k as u64 % 192) as u32;
                let e = apply_direction(e, direction);
                acc = acc.wrapping_add(U192::from(a).rotl(e));
            }
            acc.to_fp()
        })
        .collect()
}

/// 64-point kernel via the paper's Eq. 5: split `i = 8·i' + j`, compute the
/// eight 8-point sub-DFTs (over `i'`, one per input phase `j`), then combine
/// across `j` with twiddles `ω_64^{j·k1}·ω_8^{j·k2}` — all shifts.
fn ntt64(input: &[Fp], direction: Direction) -> Vec<Fp> {
    debug_assert_eq!(input.len(), 64);
    // Stage 1: for each phase j, the 8-point DFT of a[8i+j] over i.
    // inner[j][k1] = Σ_i a[8i+j]·ω_8^{i·k1}, with ω_8 = 2^24.
    let mut inner = [[U192::ZERO; 8]; 8];
    for j in 0..8 {
        for k1 in 0..8u64 {
            let mut acc = U192::ZERO;
            for i in 0..8u64 {
                let e = apply_direction((24 * i * k1 % 192) as u32, direction);
                acc = acc.wrapping_add(U192::from(input[(8 * i + j as u64) as usize]).rotl(e));
            }
            inner[j][k1 as usize] = acc;
        }
    }
    // Stage 2: A[k1 + 8·k2] = Σ_j inner[j][k1]·ω_64^{j·k1}·ω_8^{j·k2},
    // with ω_64 = 2^3.
    let mut out = vec![Fp::ZERO; 64];
    for k1 in 0..8u64 {
        for k2 in 0..8u64 {
            let mut acc = U192::ZERO;
            for j in 0..8u64 {
                let e = ((3 * j * k1 + 24 * j * k2) % 192) as u32;
                let e = apply_direction(e, direction);
                acc = acc.wrapping_add(inner[j as usize][k1 as usize].rotl(e));
            }
            out[(k1 + 8 * k2) as usize] = acc.to_fp();
        }
    }
    out
}

/// Maps a forward shift exponent to the requested direction
/// (`2^{-e} = 2^{192−e}` since `2^192 ≡ 1`).
fn apply_direction(e: u32, direction: Direction) -> u32 {
    match direction {
        Direction::Forward => e % 192,
        Direction::Inverse => (192 - e % 192) % 192,
    }
}

/// The number of shift-rotate operations the Eq. 5 decomposition performs
/// for one 64-point transform (used by the operation-count ablation).
pub const NTT64_SHARED_SHIFT_OPS: usize = 2 * 64 * 8;

/// The number of shift-rotate operations a flat Eq. 3 evaluation performs.
pub const NTT64_FLAT_SHIFT_OPS: usize = 64 * 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use he_field::roots;

    fn test_input(n: usize) -> Vec<Fp> {
        (0..n as u64).map(|i| Fp::new(i.wrapping_mul(0x0123_4567_89ab_cdef) ^ 0x55)).collect()
    }

    #[test]
    fn all_sizes_match_naive_forward() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let omega = roots::root_of_unity(n as u64).unwrap();
            assert_eq!(
                ntt_small(&input, Direction::Forward).unwrap(),
                naive::dft(&input, omega),
                "n = {n}"
            );
        }
    }

    #[test]
    fn inverse_is_unscaled_idft() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let omega = roots::root_of_unity(n as u64).unwrap();
            let inv_unscaled = ntt_small(&input, Direction::Inverse).unwrap();
            let expected = naive::dft(&input, omega.inverse().unwrap());
            assert_eq!(inv_unscaled, expected, "n = {n}");
        }
    }

    #[test]
    fn forward_then_inverse_scales_by_n() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let fwd = ntt_small(&input, Direction::Forward).unwrap();
            let back = ntt_small(&fwd, Direction::Inverse).unwrap();
            let n_fp = Fp::new(n as u64);
            for (x, y) in input.iter().zip(&back) {
                assert_eq!(*x * n_fp, *y, "n = {n}");
            }
        }
    }

    #[test]
    fn unsupported_sizes_error() {
        for n in [0usize, 1, 2, 4, 7, 128] {
            let input = vec![Fp::ZERO; n];
            assert!(ntt_small(&input, Direction::Forward).is_err(), "n = {n}");
        }
    }

    #[test]
    fn kernel_is_multiplier_free_claim() {
        // The roots used are powers of two (documentation-level invariant).
        for n in SHIFT_KERNEL_SIZES {
            let omega = roots::root_of_unity(n as u64).unwrap();
            let log = omega.log2_of_pow2().expect("kernel root must be a power of two");
            assert_eq!(log as usize, 192 / n);
        }
    }

    #[test]
    fn eq5_sharing_reduces_ops() {
        assert!(NTT64_SHARED_SHIFT_OPS * 4 == NTT64_FLAT_SHIFT_OPS);
    }
}
