//! Shift-only small transforms (paper Eq. 3).
//!
//! For any `n` dividing 192, the canonical `n`-th root of unity is the power
//! of two `2^{192/n}`, so the full `n`-point DFT
//! `A[k] = Σ_i a[i]·(2^{192/n})^{ik}` uses **only shifts and additions** —
//! this is what makes the FFGA's radix-64 unit multiplier-free. The paper
//! notes the unit "can be adapted, with minor modifications, to compute also
//! Radix-8, Radix-16, and Radix-32 FFTs"; all four sizes are provided here.
//!
//! The hardware evaluates the 64-point block with the paper's Eq. 5
//! two-level decomposition (8 × 8), sharing first-stage partial sums to cut
//! the shift/add count from `64·64` to `2·64·8` — modeled bit-exactly by
//! the unit models in `he-hwsim`. In software the same multiplier-free
//! property admits an even cheaper evaluation: a radix-2 butterfly network
//! whose twiddles are all rotations (`(n/2)·log2(n)` butterflies), which is
//! what these kernels use. Both evaluations produce identical canonical
//! outputs; the Eq. 5 operation counts remain exported for the hardware
//! ablation ([`NTT64_SHARED_SHIFT_OPS`], [`NTT64_FLAT_SHIFT_OPS`]).

use he_field::{Fp, U192};

use crate::error::NttError;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward transform with root `2^{192/n}`.
    Forward,
    /// Inverse (unscaled) transform with root `2^{-192/n}`.
    Inverse,
}

/// Sizes supported by the shift-only kernels.
pub const SHIFT_KERNEL_SIZES: [usize; 4] = [8, 16, 32, 64];

/// Whether `n` has a shift-only kernel.
pub fn supports(n: usize) -> bool {
    SHIFT_KERNEL_SIZES.contains(&n)
}

/// Computes an `n`-point DFT with shift-only twiddles, `n ∈ {8, 16, 32, 64}`.
///
/// Natural order in and out; the inverse direction is **unscaled** (no
/// `1/n` factor), matching what the hardware unit produces.
///
/// # Errors
///
/// Returns [`NttError::UnsupportedSize`] for other sizes.
///
/// ```
/// use he_field::{roots, Fp};
/// use he_ntt::kernels::{ntt_small, Direction};
/// use he_ntt::naive;
///
/// let input: Vec<Fp> = (0..64).map(Fp::new).collect();
/// let out = ntt_small(&input, Direction::Forward)?;
/// assert_eq!(out, naive::dft(&input, roots::OMEGA_64));
/// # Ok::<(), he_ntt::NttError>(())
/// ```
pub fn ntt_small(input: &[Fp], direction: Direction) -> Result<Vec<Fp>, NttError> {
    let mut out = vec![Fp::ZERO; input.len()];
    ntt_small_into(input, &mut out, direction)?;
    Ok(out)
}

/// [`ntt_small`] writing into a caller-provided buffer — the kernel form
/// the in-place transform pipeline uses (no heap allocation; all
/// temporaries live on the stack).
///
/// `input` and `out` must not overlap (they are distinct borrows by
/// construction) and must have the same supported length.
///
/// # Errors
///
/// Returns [`NttError::UnsupportedSize`] for sizes outside `{8, 16, 32,
/// 64}` and [`NttError::LengthMismatch`] if `out` has a different length.
pub fn ntt_small_into(input: &[Fp], out: &mut [Fp], direction: Direction) -> Result<(), NttError> {
    if input.len() != out.len() {
        return Err(NttError::LengthMismatch {
            expected: input.len(),
            actual: out.len(),
        });
    }
    match input.len() {
        8 | 16 | 32 | 64 => {
            ntt_pow2_shift(input, out, direction);
            Ok(())
        }
        n => Err(NttError::UnsupportedSize {
            n,
            reason: "shift-only kernels exist for 8, 16, 32 and 64 points",
        }),
    }
}

/// Shift-only radix-2 decimation-in-time FFT for `n | 192`, `n ∈ {8, 16,
/// 32, 64}`, entirely in `U192` end-around-carry arithmetic.
///
/// The hardware evaluates these blocks with the Eq. 5 shared-partial-sum
/// structure (see [`NTT64_SHARED_SHIFT_OPS`] and the bit-exact unit models
/// in `he-hwsim`); in software the same multiplier-free property — every
/// twiddle `ω_m^j = 2^{(192/m)·j}` is a rotation — makes the full
/// `(n/2)·log2(n)` butterfly network the cheapest evaluation: ~3 rotate/
/// add-class operations per butterfly instead of 2 per term of the
/// quadratic forms. All intermediates are exact modulo `2^192 − 1`, so the
/// canonical outputs are bit-identical to any other evaluation order.
fn ntt_pow2_shift(input: &[Fp], out: &mut [Fp], direction: Direction) {
    let n = input.len();
    debug_assert!(n.is_power_of_two() && 192 % n == 0 && n <= 64);
    let mut storage = [U192::ZERO; 64];
    let buf = &mut storage[..n];
    // Bit-reversed load (decimation in time).
    let bits = n.trailing_zeros();
    for (i, &a) in input.iter().enumerate() {
        let j = ((i as u32).reverse_bits() >> (32 - bits)) as usize;
        buf[j] = U192::from(a);
    }
    let mut exps = [0u32; 32];
    let mut m = 2usize;
    while m <= n {
        let half = m / 2;
        let step = (192 / m) as u32; // ω_m = 2^{192/m}
        for (j, e) in exps[..half].iter_mut().enumerate() {
            *e = apply_direction(step * j as u32, direction);
        }
        for block in buf.chunks_exact_mut(m) {
            let (lo, hi) = block.split_at_mut(half);
            for ((u, v), &e) in lo.iter_mut().zip(hi.iter_mut()).zip(&exps[..half]) {
                let t = v.rotl(e);
                let a = *u;
                *u = a.wrapping_add(t);
                *v = a.wrapping_sub(t);
            }
        }
        m *= 2;
    }
    for (slot, &v) in out.iter_mut().zip(buf.iter()) {
        *slot = v.to_fp();
    }
}

/// Maps a forward shift exponent to the requested direction
/// (`2^{-e} = 2^{192−e}` since `2^192 ≡ 1`).
fn apply_direction(e: u32, direction: Direction) -> u32 {
    match direction {
        Direction::Forward => e % 192,
        Direction::Inverse => (192 - e % 192) % 192,
    }
}

/// The number of shift-rotate operations the Eq. 5 decomposition performs
/// for one 64-point transform (used by the operation-count ablation).
pub const NTT64_SHARED_SHIFT_OPS: usize = 2 * 64 * 8;

/// The number of shift-rotate operations a flat Eq. 3 evaluation performs.
pub const NTT64_FLAT_SHIFT_OPS: usize = 64 * 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use he_field::roots;

    fn test_input(n: usize) -> Vec<Fp> {
        (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x0123_4567_89ab_cdef) ^ 0x55))
            .collect()
    }

    #[test]
    fn all_sizes_match_naive_forward() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let omega = roots::root_of_unity(n as u64).unwrap();
            assert_eq!(
                ntt_small(&input, Direction::Forward).unwrap(),
                naive::dft(&input, omega),
                "n = {n}"
            );
        }
    }

    #[test]
    fn inverse_is_unscaled_idft() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let omega = roots::root_of_unity(n as u64).unwrap();
            let inv_unscaled = ntt_small(&input, Direction::Inverse).unwrap();
            let expected = naive::dft(&input, omega.inverse().unwrap());
            assert_eq!(inv_unscaled, expected, "n = {n}");
        }
    }

    #[test]
    fn forward_then_inverse_scales_by_n() {
        for n in SHIFT_KERNEL_SIZES {
            let input = test_input(n);
            let fwd = ntt_small(&input, Direction::Forward).unwrap();
            let back = ntt_small(&fwd, Direction::Inverse).unwrap();
            let n_fp = Fp::new(n as u64);
            for (x, y) in input.iter().zip(&back) {
                assert_eq!(*x * n_fp, *y, "n = {n}");
            }
        }
    }

    #[test]
    fn unsupported_sizes_error() {
        for n in [0usize, 1, 2, 4, 7, 128] {
            let input = vec![Fp::ZERO; n];
            assert!(ntt_small(&input, Direction::Forward).is_err(), "n = {n}");
        }
    }

    #[test]
    fn kernel_is_multiplier_free_claim() {
        // The roots used are powers of two (documentation-level invariant).
        for n in SHIFT_KERNEL_SIZES {
            let omega = roots::root_of_unity(n as u64).unwrap();
            let log = omega
                .log2_of_pow2()
                .expect("kernel root must be a power of two");
            assert_eq!(log as usize, 192 / n);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the paper's 4x claim
    fn eq5_sharing_reduces_ops() {
        assert!(NTT64_SHARED_SHIFT_OPS * 4 == NTT64_FLAT_SHIFT_OPS);
    }
}
