//! Negacyclic (twisted) transforms: polynomial multiplication modulo
//! `X^n + 1`.
//!
//! Section III of the paper notes that ultralong multiplication "plays a
//! central role in different fully homomorphic schemes, such as the
//! integer-based approach and solutions based on Lattice problems and
//! Learning with Errors, which may thus be implemented on top of the
//! accelerator". RLWE-based schemes multiply polynomials in
//! `Z_p[X]/(X^n + 1)` — a **negacyclic** convolution, obtained from the
//! cyclic transform by pre-twisting with powers of `ψ` where `ψ² = ω`:
//!
//! ```text
//! (a ⊛ b)[k] = ψ^{-k} · InvNTT( NTT(ψ^i·a[i]) ⊙ NTT(ψ^i·b[i]) )[k]
//! ```
//!
//! The same FFT hardware therefore serves RLWE workloads, exactly as the
//! paper claims; the `rlwe_polymul` example demonstrates it.

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;

/// A planned negacyclic transformer for length-`n` polynomials
/// (`n` a power of two, `2n ≤ 2^32`).
///
/// ```
/// use he_field::Fp;
/// use he_ntt::negacyclic::NegacyclicPlan;
///
/// // (X + 1)·(X − 1) = X² − 1 ≡ −1 − 0·X + X² ... in Z[X]/(X²+1): X² ≡ −1,
/// // so the product is −2.
/// let plan = NegacyclicPlan::new(2)?;
/// let a = vec![Fp::ONE, Fp::ONE];            // 1 + X
/// let b = vec![-Fp::ONE, Fp::ONE];           // −1 + X
/// let c = plan.multiply(&a, &b);
/// assert_eq!(c, vec![-Fp::new(2), Fp::ZERO]); // −2
/// # Ok::<(), he_ntt::NttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NegacyclicPlan {
    n: usize,
    plan: Radix2kPlan,
    /// `ψ^i` for `i ∈ [0, n)`, `ψ` a primitive 2n-th root with `ψ² = ω`.
    psi: Vec<Fp>,
    /// `ψ^{-i}` for `i ∈ [0, n)`.
    psi_inv: Vec<Fp>,
}

impl NegacyclicPlan {
    /// Plans a negacyclic multiplier for length-`n` polynomials.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] unless `n` is a power of two
    /// with a `2n`-th root of unity available.
    pub fn new(n: usize) -> Result<NegacyclicPlan, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError::UnsupportedSize {
                n,
                reason: "negacyclic length must be a power of two >= 2",
            });
        }
        let psi_root = roots::root_of_unity(2 * n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "2n must divide p-1",
        })?;
        // ψ² is a primitive n-th root; build the cyclic plan on exactly it
        // so the twist identity holds.
        let plan = Radix2kPlan::with_omega(n, psi_root.square())?;
        let psi = roots::power_table(psi_root, n);
        let psi_inv_root = psi_root.inverse().expect("root of unity");
        let psi_inv = roots::power_table(psi_inv_root, n);
        Ok(NegacyclicPlan {
            n,
            plan,
            psi,
            psi_inv,
        })
    }

    /// The polynomial length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bytes held by the precomputed tables: the cyclic engine's twiddles
    /// plus the ψ / ψ⁻¹ twist tables. Computed once at construction and
    /// shared by every transform.
    pub fn table_bytes(&self) -> usize {
        self.plan.table_bytes()
            + std::mem::size_of_val(self.psi.as_slice())
            + std::mem::size_of_val(self.psi_inv.as_slice())
    }

    /// Forward negacyclic transform: twist then cyclic NTT.
    ///
    /// Thin allocating wrapper over [`NegacyclicPlan::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_into(&mut data);
        data
    }

    /// Inverse negacyclic transform: cyclic inverse NTT then untwist.
    ///
    /// Thin allocating wrapper over [`NegacyclicPlan::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_into(&mut data);
        data
    }

    /// In-place forward negacyclic transform (the ψ-twist and the cyclic
    /// pass both operate where the data lives; no scratch is needed).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward_into(&self, data: &mut [Fp]) {
        assert_eq!(data.len(), self.n, "input length must equal plan length");
        for (a, &psi) in data.iter_mut().zip(&self.psi) {
            *a *= psi;
        }
        self.plan
            .forward_in_place(data)
            .expect("length checked above");
    }

    /// In-place inverse negacyclic transform.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse_into(&self, data: &mut [Fp]) {
        assert_eq!(data.len(), self.n, "input length must equal plan length");
        self.plan
            .inverse_in_place(data)
            .expect("length checked above");
        for (a, &psi_inv) in data.iter_mut().zip(&self.psi_inv) {
            *a *= psi_inv;
        }
    }

    /// Multiplies two polynomials modulo `X^n + 1`.
    ///
    /// Thin allocating wrapper over [`NegacyclicPlan::multiply_into`].
    ///
    /// # Panics
    ///
    /// Panics if either operand's length differs from the plan length.
    pub fn multiply(&self, a: &[Fp], b: &[Fp]) -> Vec<Fp> {
        let mut out = vec![Fp::ZERO; self.n];
        self.multiply_into(a, b, &mut out, &mut NttScratch::new());
        out
    }

    /// Multiplies two polynomials modulo `X^n + 1` into `out`, staging the
    /// two spectra in `scratch` — allocation-free once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if any buffer's length differs from the plan length.
    pub fn multiply_into(&self, a: &[Fp], b: &[Fp], out: &mut [Fp], scratch: &mut NttScratch) {
        assert_eq!(out.len(), self.n, "output length must equal plan length");
        assert_eq!(a.len(), self.n, "input length must equal plan length");
        assert_eq!(b.len(), self.n, "input length must equal plan length");
        out.copy_from_slice(a);
        self.forward_into(out);
        let mut fb = scratch.take_any(self.n);
        fb.copy_from_slice(b);
        self.forward_into(&mut fb);
        for (x, &y) in out.iter_mut().zip(fb.iter()) {
            *x *= y;
        }
        scratch.put(fb);
        self.inverse_into(out);
    }
}

/// Reference negacyclic convolution by the definition:
/// `c[k] = Σ_{i+j=k} a_i·b_j − Σ_{i+j=k+n} a_i·b_j`.
pub fn naive_negacyclic(a: &[Fp], b: &[Fp]) -> Vec<Fp> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut out = vec![Fp::ZERO; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let k = (i + j) % n;
            let term = ai * bj;
            if i + j < n {
                out[k] += term;
            } else {
                out[k] -= term; // X^n ≡ −1
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(n: usize, seed: u64) -> Vec<Fp> {
        (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(seed) ^ 0x5a5a))
            .collect()
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(NegacyclicPlan::new(0).is_err());
        assert!(NegacyclicPlan::new(1).is_err());
        assert!(NegacyclicPlan::new(3).is_err());
    }

    #[test]
    fn transform_roundtrips() {
        for n in [2usize, 8, 64, 256] {
            let plan = NegacyclicPlan::new(n).unwrap();
            let a = poly(n, 0x9e37);
            assert_eq!(plan.inverse(&plan.forward(&a)), a, "n = {n}");
        }
    }

    #[test]
    fn multiply_matches_naive() {
        for n in [2usize, 4, 16, 128, 1024] {
            let plan = NegacyclicPlan::new(n).unwrap();
            let a = poly(n, 0x1234);
            let b = poly(n, 0xfeed);
            assert_eq!(plan.multiply(&a, &b), naive_negacyclic(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn x_to_the_n_is_minus_one() {
        // X^{n/2} · X^{n/2} = X^n ≡ −1.
        let n = 16;
        let plan = NegacyclicPlan::new(n).unwrap();
        let mut half = vec![Fp::ZERO; n];
        half[n / 2] = Fp::ONE;
        let sq = plan.multiply(&half, &half);
        let mut expected = vec![Fp::ZERO; n];
        expected[0] = -Fp::ONE;
        assert_eq!(sq, expected);
    }

    #[test]
    fn wraparound_sign_differs_from_cyclic() {
        let n = 8;
        let plan = NegacyclicPlan::new(n).unwrap();
        let a = poly(n, 3);
        let b = poly(n, 5);
        let nega = plan.multiply(&a, &b);
        let cyclic = crate::naive::cyclic_convolve(&a, &b);
        assert_ne!(nega, cyclic, "wrap terms must flip sign");
    }
}
