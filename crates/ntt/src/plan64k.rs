//! The paper's 64K-point transform (Eq. 2), executed by the radix-2^k
//! stage compiler.
//!
//! The paper decomposes the 64K transform as radix-64 × radix-64 ×
//! radix-16 (input `n = 1024·n3 + 16·n2 + n1`, output
//! `k = kA + 64·kB + 4096·kC`): two stages of 1024 shift-only 64-point
//! DFTs, a stage of 4096 shift-only 16-point DFTs, and DSP modular
//! multipliers for the inter-stage twiddles. Those are exactly the
//! operation counts behind its timing model
//! (`T_FFT = 2·(T_C·8·1024)/P + (T_C·2)·4096/P`), preserved here by
//! [`Ntt64k::operation_counts`] for the resource/performance models in
//! `he-hwsim`.
//!
//! In software the same transform is executed by [`Radix2kPlan`] — the
//! radix-2^k schedule `[6, 5, 5]` is the software analogue of the paper's
//! 64/64/16 split (radix-64, radix-32, radix-32 groups, each group one
//! data pass with an in-register shift-only network). `Ntt64k` is a thin
//! wrapper that pins the length to [`N64K`] and the root to the canonical
//! aligned [`roots::omega_64k`], keeping the scratch-taking `*_into` API
//! shape its callers (`he-ssa`, benches) already use — the engine itself
//! is fully in-place and no longer touches the scratch pool.

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;

/// The transform length of the paper's plan: 64K points.
pub const N64K: usize = 65_536;

/// The paper's 64K-point NTT (radix-64 × radix-64 × radix-16), forward and
/// inverse, with precomputed twiddle tables.
///
/// The inverse applies the `1/65536 = 2^{176} (mod p)` scaling — itself a
/// shift, one more convenience of the Solinas prime.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::{Ntt64k, N64K};
///
/// let plan = Ntt64k::new();
/// let mut x = vec![Fp::ZERO; N64K];
/// x[3] = Fp::new(9);
/// assert_eq!(plan.inverse(&plan.forward(&x)), x);
/// ```
#[derive(Debug, Clone)]
pub struct Ntt64k {
    /// The compiled radix-2^k engine (schedule `[6, 5, 5]`) on the
    /// canonical aligned 65,536th root.
    engine: Radix2kPlan,
}

impl Default for Ntt64k {
    fn default() -> Ntt64k {
        Ntt64k::new()
    }
}

impl Ntt64k {
    /// Builds the plan (the engine computes its stage and micro twiddle
    /// tables once; they are shared by every transform).
    pub fn new() -> Ntt64k {
        Ntt64k {
            engine: Radix2kPlan::with_omega(N64K, roots::omega_64k())
                .expect("the canonical 65536th root plans a 64K transform"),
        }
    }

    /// The transform length (always [`N64K`]).
    pub fn len(&self) -> usize {
        N64K
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The primitive 65,536th root in use.
    pub fn omega(&self) -> Fp {
        self.engine.omega()
    }

    /// Bytes held by the engine's precomputed twiddle tables (computed
    /// once at construction, shared by every transform).
    pub fn table_bytes(&self) -> usize {
        self.engine.table_bytes()
    }

    /// Forward 64K-point transform (natural order in and out).
    ///
    /// Thin allocating wrapper over [`Ntt64k::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_into(&mut data, &mut NttScratch::new());
        data
    }

    /// Inverse 64K-point transform including the `1/n` scaling.
    ///
    /// Thin allocating wrapper over [`Ntt64k::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_into(&mut data, &mut NttScratch::new());
        data
    }

    /// In-place forward transform.
    ///
    /// The radix-2^k engine works entirely in place, so `scratch` is kept
    /// only for API compatibility (callers that pool a scratch across
    /// mixed plan types keep working); it is never touched. With the
    /// `parallel` feature the independent orbit groups of each stage fan
    /// out over the available cores.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 65536`.
    pub fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        let _ = scratch;
        assert_eq!(data.len(), N64K, "Ntt64k operates on 65536 points");
        self.engine
            .forward_in_place(data)
            .expect("length asserted above");
    }

    /// In-place inverse transform (including the `1/n` scaling, folded
    /// into the last pass as the shift `2^{176}`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 65536`.
    pub fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        let _ = scratch;
        assert_eq!(data.len(), N64K, "Ntt64k operates on 65536 points");
        self.engine
            .inverse_in_place(data)
            .expect("length asserted above");
    }

    /// Fallible forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::LengthMismatch`] if the input is not 64K points.
    pub fn try_forward(&self, input: &[Fp]) -> Result<Vec<Fp>, NttError> {
        if input.len() != N64K {
            return Err(NttError::LengthMismatch {
                expected: N64K,
                actual: input.len(),
            });
        }
        Ok(self.forward(input))
    }

    /// Operation census for one forward transform **on the paper's
    /// hardware plan** (radix-64 × radix-64 × radix-16), used by the
    /// performance and resource models:
    /// `(fft64_count, fft16_count, twiddle_muls)`.
    ///
    /// This is the hardware model of Eq. 2, independent of the software
    /// schedule the engine happens to run.
    pub fn operation_counts() -> (usize, usize, usize) {
        // 1024 FFT-64s in each of stages 1 and 2; 4096 FFT-16s in stage 3;
        // twiddle multiplications before stages 2 and 3 (64K each, minus the
        // trivial ω^0 ones which hardware still spends a multiplier slot on).
        (2 * 1024, 4096, 2 * N64K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::MixedRadixPlan;

    fn sparse_input() -> Vec<Fp> {
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(3);
        v[1] = Fp::new(1);
        v[17] = Fp::new(255);
        v[1024] = Fp::new(7);
        v[65_535] = Fp::new(11);
        v
    }

    #[test]
    fn impulse_spectrum_is_flat() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(42);
        let f = plan.forward(&v);
        assert!(f.iter().all(|&x| x == Fp::new(42)));
    }

    #[test]
    fn shifted_impulse_spectrum_is_geometric() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[1] = Fp::ONE;
        let f = plan.forward(&v);
        let w = plan.omega();
        // Spot-check a handful of frequencies (the full check is O(n log n)
        // worth of pows).
        for k in [0usize, 1, 2, 63, 64, 4095, 4096, 65_535] {
            assert_eq!(f[k], w.pow(k as u64), "k = {k}");
        }
    }

    #[test]
    fn roundtrip() {
        let plan = Ntt64k::new();
        let v = sparse_input();
        assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn into_matches_allocating_and_never_takes_scratch() {
        let plan = Ntt64k::new();
        let v = sparse_input();
        let expected = plan.forward(&v);
        let mut scratch = NttScratch::new();
        let mut data = v.clone();
        // Two roundtrips through the same scratch: values must bit-match
        // the allocating API every time.
        for _ in 0..2 {
            plan.forward_into(&mut data, &mut scratch);
            assert_eq!(data, expected);
            plan.inverse_into(&mut data, &mut scratch);
            assert_eq!(data, v);
        }
        assert_eq!(
            scratch.pooled(),
            0,
            "the radix-2^k engine is fully in-place: no staging buffer"
        );
    }

    #[test]
    fn single_thread_matches_parallel() {
        // The parallel fan-out must be a pure scheduling change.
        let plan = Ntt64k::new();
        let v = sparse_input();
        let expected = plan.forward(&v);
        crate::par::set_threads(1);
        let sequential = plan.forward(&v);
        crate::par::set_threads(0);
        assert_eq!(sequential, expected);
    }

    #[test]
    fn matches_generic_mixed_radix() {
        // The pure Eq. 1 recursion on the paper's radix list is the
        // independent reference implementation (`reference` bypasses the
        // radix-2^k delegation, so this cross-checks two distinct
        // algorithms).
        let plan = Ntt64k::new();
        let generic = MixedRadixPlan::reference(&[64, 64, 16]).unwrap();
        let v = sparse_input();
        assert_eq!(plan.forward(&v), generic.forward(&v));
    }

    #[test]
    fn alternative_factorizations_agree() {
        // The unit "can be adapted … to compute also Radix-8, Radix-16 and
        // Radix-32 FFTs. This gives us greater flexibility in choosing an
        // FFT order": any factorization of 64K must give the same spectrum.
        let plan = Ntt64k::new();
        let v = sparse_input();
        let reference = plan.forward(&v);
        for radices in [
            vec![32usize, 32, 8, 8],
            vec![16, 64, 64],
            vec![8, 8, 8, 8, 16],
        ] {
            let alt = MixedRadixPlan::reference(&radices).unwrap();
            assert_eq!(alt.len(), N64K);
            assert_eq!(alt.forward(&v), reference, "radices {radices:?}");
        }
    }

    #[test]
    fn try_forward_length_check() {
        let plan = Ntt64k::new();
        assert!(matches!(
            plan.try_forward(&[Fp::ZERO; 4]),
            Err(NttError::LengthMismatch {
                expected: N64K,
                actual: 4
            })
        ));
    }

    #[test]
    fn operation_counts_match_paper_formula() {
        let (fft64, fft16, _) = Ntt64k::operation_counts();
        assert_eq!(fft64, 2048);
        assert_eq!(fft16, 4096);
    }

    #[test]
    fn table_footprint_is_shared_and_bounded() {
        // Twiddle tables live on the plan (built once at construction),
        // not in any scratch: the 64K plan's whole footprint stays under
        // 2 MiB and transforms take nothing from the pool.
        let plan = Ntt64k::new();
        assert!(plan.table_bytes() > 0);
        assert!(plan.table_bytes() < 2 * 1024 * 1024);
    }
}
