//! The paper's three-stage 64K-point transform (Eq. 2), with precomputed
//! inter-stage twiddle tables.
//!
//! Index layout (DESIGN.md §7): input `n = 1024·n3 + 16·n2 + n1` with
//! `n3, n2 ∈ [0, 64)`, `n1 ∈ [0, 16)`; output `k = kA + 64·kB + 4096·kC`.
//!
//! * **Stage 1** — 1024 shift-only 64-point DFTs over `n3` → digit `kA`;
//! * **Twiddle 2** — multiply by `ω_4096^{kA·n2}` (the accelerator's
//!   DSP modular multipliers);
//! * **Stage 2** — 1024 shift-only 64-point DFTs over `n2` → digit `kB`;
//! * **Twiddle 3** — multiply by `ω^{n1·(kA + 64·kB)}`;
//! * **Stage 3** — 4096 shift-only 16-point DFTs over `n1` → digit `kC`.
//!
//! These are exactly the operation counts behind the paper's timing model:
//! two stages of 1024 FFT-64s plus one stage of 4096 FFT-16s
//! (`T_FFT = 2·(T_C·8·1024)/P + (T_C·2)·4096/P`).

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::kernels::{self, Direction};

/// The transform length of the paper's plan: 64K points.
pub const N64K: usize = 65_536;

/// The paper's 64K-point NTT (radix-64 × radix-64 × radix-16), forward and
/// inverse, with precomputed twiddle tables.
///
/// The inverse applies the `1/65536 = 2^{176} (mod p)` scaling — itself a
/// shift, one more convenience of the Solinas prime.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::{Ntt64k, N64K};
///
/// let plan = Ntt64k::new();
/// let mut x = vec![Fp::ZERO; N64K];
/// x[3] = Fp::new(9);
/// assert_eq!(plan.inverse(&plan.forward(&x)), x);
/// ```
#[derive(Debug, Clone)]
pub struct Ntt64k {
    /// `ω^e` for `e ∈ [0, 65536)`, `ω` the aligned 65,536th root.
    table: Vec<Fp>,
}

impl Default for Ntt64k {
    fn default() -> Ntt64k {
        Ntt64k::new()
    }
}

impl Ntt64k {
    /// Builds the plan (computes the 64K-entry twiddle table once).
    pub fn new() -> Ntt64k {
        Ntt64k {
            table: roots::power_table(roots::omega_64k(), N64K),
        }
    }

    /// The transform length (always [`N64K`]).
    pub fn len(&self) -> usize {
        N64K
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The primitive 65,536th root in use.
    pub fn omega(&self) -> Fp {
        self.table[1]
    }

    #[inline]
    fn tw(&self, e: usize, direction: Direction) -> Fp {
        match direction {
            Direction::Forward => self.table[e % N64K],
            Direction::Inverse => self.table[(N64K - e % N64K) % N64K],
        }
    }

    /// Forward 64K-point transform (natural order in and out).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        self.transform(input, Direction::Forward)
    }

    /// Inverse 64K-point transform including the `1/n` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut out = self.transform(input, Direction::Inverse);
        // 1/65536 = 2^{-16} = 2^{176} (mod p): the scaling is a shift.
        for x in out.iter_mut() {
            *x = x.mul_by_pow2(176);
        }
        out
    }

    /// Fallible forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::LengthMismatch`] if the input is not 64K points.
    pub fn try_forward(&self, input: &[Fp]) -> Result<Vec<Fp>, NttError> {
        if input.len() != N64K {
            return Err(NttError::LengthMismatch {
                expected: N64K,
                actual: input.len(),
            });
        }
        Ok(self.forward(input))
    }

    fn transform(&self, input: &[Fp], dir: Direction) -> Vec<Fp> {
        assert_eq!(input.len(), N64K, "Ntt64k operates on 65536 points");

        // Stage 1: 64-point DFTs over n3 (stride 1024), for each
        // m = 16·n2 + n1. Result s1[kA·1024 + m].
        let mut s1 = vec![Fp::ZERO; N64K];
        let mut column = [Fp::ZERO; 64];
        for m in 0..1024 {
            for (d, c) in column.iter_mut().enumerate() {
                *c = input[1024 * d + m];
            }
            let sub = kernels::ntt_small(&column, dir).expect("64 is supported");
            for (ka, &v) in sub.iter().enumerate() {
                s1[ka * 1024 + m] = v;
            }
        }

        // Twiddle 2 + Stage 2: for each (kA, n1), 64-point DFT over n2.
        // Input element (kA, n2, n1) sits at s1[kA·1024 + 16·n2 + n1] and is
        // twiddled by ω_4096^{kA·n2} = ω^{16·kA·n2}.
        // Result s2[(kA + 64·kB)·16 + n1].
        let mut s2 = vec![Fp::ZERO; N64K];
        for ka in 0..64 {
            for n1 in 0..16 {
                for (n2, c) in column.iter_mut().enumerate().take(64) {
                    let v = s1[ka * 1024 + 16 * n2 + n1];
                    *c = v * self.tw(16 * ka * n2, dir);
                }
                let sub = kernels::ntt_small(&column, dir).expect("64 is supported");
                for (kb, &v) in sub.iter().enumerate() {
                    s2[(ka + 64 * kb) * 16 + n1] = v;
                }
            }
        }

        // Twiddle 3 + Stage 3: for each k2' = kA + 64·kB, 16-point DFT over
        // n1 with twiddle ω^{n1·k2'}. Output k = k2' + 4096·kC.
        let mut out = vec![Fp::ZERO; N64K];
        let mut col16 = [Fp::ZERO; 16];
        for k2p in 0..4096 {
            for (n1, c) in col16.iter_mut().enumerate() {
                let v = s2[k2p * 16 + n1];
                *c = v * self.tw(n1 * k2p, dir);
            }
            let sub = kernels::ntt_small(&col16, dir).expect("16 is supported");
            for (kc, &v) in sub.iter().enumerate() {
                out[k2p + 4096 * kc] = v;
            }
        }
        out
    }

    /// Operation census for one forward transform, used by the performance
    /// and resource models: `(fft64_count, fft16_count, twiddle_muls)`.
    pub fn operation_counts() -> (usize, usize, usize) {
        // 1024 FFT-64s in each of stages 1 and 2; 4096 FFT-16s in stage 3;
        // twiddle multiplications before stages 2 and 3 (64K each, minus the
        // trivial ω^0 ones which hardware still spends a multiplier slot on).
        (2 * 1024, 4096, 2 * N64K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::MixedRadixPlan;

    fn sparse_input() -> Vec<Fp> {
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(3);
        v[1] = Fp::new(1);
        v[17] = Fp::new(255);
        v[1024] = Fp::new(7);
        v[65_535] = Fp::new(11);
        v
    }

    #[test]
    fn impulse_spectrum_is_flat() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(42);
        let f = plan.forward(&v);
        assert!(f.iter().all(|&x| x == Fp::new(42)));
    }

    #[test]
    fn shifted_impulse_spectrum_is_geometric() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[1] = Fp::ONE;
        let f = plan.forward(&v);
        let w = plan.omega();
        // Spot-check a handful of frequencies (the full check is O(n log n)
        // worth of pows).
        for k in [0usize, 1, 2, 63, 64, 4095, 4096, 65_535] {
            assert_eq!(f[k], w.pow(k as u64), "k = {k}");
        }
    }

    #[test]
    fn roundtrip() {
        let plan = Ntt64k::new();
        let v = sparse_input();
        assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn matches_generic_mixed_radix() {
        let plan = Ntt64k::new();
        let generic = MixedRadixPlan::paper_64k();
        let v = sparse_input();
        assert_eq!(plan.forward(&v), generic.forward(&v));
    }

    #[test]
    fn alternative_factorizations_agree() {
        // The unit "can be adapted … to compute also Radix-8, Radix-16 and
        // Radix-32 FFTs. This gives us greater flexibility in choosing an
        // FFT order": any factorization of 64K must give the same spectrum.
        let plan = Ntt64k::new();
        let v = sparse_input();
        let reference = plan.forward(&v);
        for radices in [vec![32usize, 32, 8, 8], vec![16, 64, 64], vec![8, 8, 8, 8, 16]] {
            let alt = MixedRadixPlan::new(&radices).unwrap();
            assert_eq!(alt.len(), N64K);
            assert_eq!(alt.forward(&v), reference, "radices {radices:?}");
        }
    }

    #[test]
    fn try_forward_length_check() {
        let plan = Ntt64k::new();
        assert!(matches!(
            plan.try_forward(&[Fp::ZERO; 4]),
            Err(NttError::LengthMismatch { expected: N64K, actual: 4 })
        ));
    }

    #[test]
    fn operation_counts_match_paper_formula() {
        let (fft64, fft16, _) = Ntt64k::operation_counts();
        assert_eq!(fft64, 2048);
        assert_eq!(fft16, 4096);
    }
}
