//! The paper's three-stage 64K-point transform (Eq. 2), with precomputed
//! inter-stage twiddle tables.
//!
//! Index layout (DESIGN.md §7): input `n = 1024·n3 + 16·n2 + n1` with
//! `n3, n2 ∈ [0, 64)`, `n1 ∈ [0, 16)`; output `k = kA + 64·kB + 4096·kC`.
//!
//! * **Stage 1** — 1024 shift-only 64-point DFTs over `n3` → digit `kA`;
//! * **Twiddle 2** — multiply by `ω_4096^{kA·n2}` (the accelerator's
//!   DSP modular multipliers);
//! * **Stage 2** — 1024 shift-only 64-point DFTs over `n2` → digit `kB`;
//! * **Twiddle 3** — multiply by `ω^{n1·(kA + 64·kB)}`;
//! * **Stage 3** — 4096 shift-only 16-point DFTs over `n1` → digit `kC`.
//!
//! These are exactly the operation counts behind the paper's timing model:
//! two stages of 1024 FFT-64s plus one stage of 4096 FFT-16s
//! (`T_FFT = 2·(T_C·8·1024)/P + (T_C·2)·4096/P`).

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::kernels::{self, Direction};
use crate::par;
use crate::scratch::NttScratch;

/// The transform length of the paper's plan: 64K points.
pub const N64K: usize = 65_536;

/// The paper's 64K-point NTT (radix-64 × radix-64 × radix-16), forward and
/// inverse, with precomputed twiddle tables.
///
/// The inverse applies the `1/65536 = 2^{176} (mod p)` scaling — itself a
/// shift, one more convenience of the Solinas prime.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::{Ntt64k, N64K};
///
/// let plan = Ntt64k::new();
/// let mut x = vec![Fp::ZERO; N64K];
/// x[3] = Fp::new(9);
/// assert_eq!(plan.inverse(&plan.forward(&x)), x);
/// ```
#[derive(Debug, Clone)]
pub struct Ntt64k {
    /// `ω^e` for `e ∈ [0, 65536)`, `ω` the aligned 65,536th root.
    table: Vec<Fp>,
}

impl Default for Ntt64k {
    fn default() -> Ntt64k {
        Ntt64k::new()
    }
}

impl Ntt64k {
    /// Builds the plan (computes the 64K-entry twiddle table once).
    pub fn new() -> Ntt64k {
        Ntt64k {
            table: roots::power_table(roots::omega_64k(), N64K),
        }
    }

    /// The transform length (always [`N64K`]).
    pub fn len(&self) -> usize {
        N64K
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The primitive 65,536th root in use.
    pub fn omega(&self) -> Fp {
        self.table[1]
    }

    #[inline]
    fn tw(&self, e: usize, direction: Direction) -> Fp {
        match direction {
            Direction::Forward => self.table[e % N64K],
            Direction::Inverse => self.table[(N64K - e % N64K) % N64K],
        }
    }

    /// Forward 64K-point transform (natural order in and out).
    ///
    /// Thin allocating wrapper over [`Ntt64k::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_into(&mut data, &mut NttScratch::new());
        data
    }

    /// Inverse 64K-point transform including the `1/n` scaling.
    ///
    /// Thin allocating wrapper over [`Ntt64k::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 65536`.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_into(&mut data, &mut NttScratch::new());
        data
    }

    /// In-place forward transform staging through `scratch`.
    ///
    /// Reusing the same scratch across calls makes repeated transforms
    /// allocation-free; with the `parallel` feature the independent
    /// sub-transforms of each stage fan out over the available cores.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 65536`.
    pub fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        self.transform_into(data, scratch, Direction::Forward);
    }

    /// In-place inverse transform (including the `1/n` scaling) staging
    /// through `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != 65536`.
    pub fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        self.transform_into(data, scratch, Direction::Inverse);
    }

    /// Fallible forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::LengthMismatch`] if the input is not 64K points.
    pub fn try_forward(&self, input: &[Fp]) -> Result<Vec<Fp>, NttError> {
        if input.len() != N64K {
            return Err(NttError::LengthMismatch {
                expected: N64K,
                actual: input.len(),
            });
        }
        Ok(self.forward(input))
    }

    /// The three stages, ping-ponging between `data` and one scratch
    /// buffer. Each stage writes **chunk-contiguous** task outputs (one
    /// chunk per independent sub-transform), which is both the cache-local
    /// layout and what lets [`par::for_each_chunk`] hand every task a
    /// disjoint `&mut` slice:
    ///
    /// * stage 1 (`data → t`): chunk `m` holds the 64-point DFT over `n3`,
    ///   `t[m·64 + kA]`;
    /// * stage 2 (`t → data`): chunk `c = kA·16 + n1` holds the twiddled
    ///   64-point DFT over `n2`, `data[c·64 + kB]`;
    /// * stage 3 (`data → t`): chunk `k2' = kA + 64·kB` holds the twiddled
    ///   16-point DFT over `n1`, `t[k2'·16 + kC]`;
    /// * the final pass permutes back to natural order
    ///   `data[k2' + 4096·kC]`, folding in the inverse `1/n` shift.
    fn transform_into(&self, data: &mut [Fp], scratch: &mut NttScratch, dir: Direction) {
        assert_eq!(data.len(), N64K, "Ntt64k operates on 65536 points");
        // Every element of the staging buffer is written by stage 1, so its
        // previous contents don't matter.
        let mut t = scratch.take_any(N64K);

        // Stage 1: 64-point DFTs over n3 (stride 1024), one per
        // m = 16·n2 + n1.
        let input: &[Fp] = data;
        par::for_each_chunk(&mut t, 64, |m, chunk| {
            let mut column = [Fp::ZERO; 64];
            for (d, c) in column.iter_mut().enumerate() {
                *c = input[1024 * d + m];
            }
            kernels::ntt_small_into(&column, chunk, dir).expect("64 is supported");
        });

        // Twiddle 2 + Stage 2: for each (kA, n1), 64-point DFT over n2.
        // Input element (kA, n2, n1) sits at t[(16·n2 + n1)·64 + kA] and is
        // twiddled by ω_4096^{kA·n2} = ω^{16·kA·n2}.
        let s1: &[Fp] = &t;
        par::for_each_chunk(data, 64, |c, chunk| {
            let (ka, n1) = (c / 16, c % 16);
            let mut column = [Fp::ZERO; 64];
            for (n2, slot) in column.iter_mut().enumerate() {
                let v = s1[(16 * n2 + n1) * 64 + ka];
                *slot = v * self.tw(16 * ka * n2, dir);
            }
            kernels::ntt_small_into(&column, chunk, dir).expect("64 is supported");
        });

        // Twiddle 3 + Stage 3: for each k2' = kA + 64·kB, 16-point DFT over
        // n1 with twiddle ω^{n1·k2'}.
        let s2: &[Fp] = data;
        par::for_each_chunk(&mut t, 16, |k2p, chunk| {
            let (ka, kb) = (k2p % 64, k2p / 64);
            let mut column = [Fp::ZERO; 16];
            for (n1, slot) in column.iter_mut().enumerate() {
                let v = s2[(ka * 16 + n1) * 64 + kb];
                *slot = v * self.tw(n1 * k2p, dir);
            }
            kernels::ntt_small_into(&column, chunk, dir).expect("16 is supported");
        });

        // Permute t[k2'·16 + kC] to the natural order data[k2' + 4096·kC];
        // the inverse 1/65536 = 2^{176} (mod p) scaling is a shift, folded
        // into the same pass.
        let spectrum: &[Fp] = &t;
        par::for_each_chunk(data, 4096, |kc, chunk| match dir {
            Direction::Forward => {
                for (k2p, slot) in chunk.iter_mut().enumerate() {
                    *slot = spectrum[k2p * 16 + kc];
                }
            }
            Direction::Inverse => {
                for (k2p, slot) in chunk.iter_mut().enumerate() {
                    *slot = spectrum[k2p * 16 + kc].mul_by_pow2(176);
                }
            }
        });

        scratch.put(t);
    }

    /// Operation census for one forward transform, used by the performance
    /// and resource models: `(fft64_count, fft16_count, twiddle_muls)`.
    pub fn operation_counts() -> (usize, usize, usize) {
        // 1024 FFT-64s in each of stages 1 and 2; 4096 FFT-16s in stage 3;
        // twiddle multiplications before stages 2 and 3 (64K each, minus the
        // trivial ω^0 ones which hardware still spends a multiplier slot on).
        (2 * 1024, 4096, 2 * N64K)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::MixedRadixPlan;

    fn sparse_input() -> Vec<Fp> {
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(3);
        v[1] = Fp::new(1);
        v[17] = Fp::new(255);
        v[1024] = Fp::new(7);
        v[65_535] = Fp::new(11);
        v
    }

    #[test]
    fn impulse_spectrum_is_flat() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[0] = Fp::new(42);
        let f = plan.forward(&v);
        assert!(f.iter().all(|&x| x == Fp::new(42)));
    }

    #[test]
    fn shifted_impulse_spectrum_is_geometric() {
        let plan = Ntt64k::new();
        let mut v = vec![Fp::ZERO; N64K];
        v[1] = Fp::ONE;
        let f = plan.forward(&v);
        let w = plan.omega();
        // Spot-check a handful of frequencies (the full check is O(n log n)
        // worth of pows).
        for k in [0usize, 1, 2, 63, 64, 4095, 4096, 65_535] {
            assert_eq!(f[k], w.pow(k as u64), "k = {k}");
        }
    }

    #[test]
    fn roundtrip() {
        let plan = Ntt64k::new();
        let v = sparse_input();
        assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn into_matches_allocating_and_reuses_scratch() {
        let plan = Ntt64k::new();
        let v = sparse_input();
        let expected = plan.forward(&v);
        let mut scratch = NttScratch::new();
        let mut data = v.clone();
        // Two roundtrips through the same scratch: values must bit-match
        // the allocating API every time.
        for _ in 0..2 {
            plan.forward_into(&mut data, &mut scratch);
            assert_eq!(data, expected);
            plan.inverse_into(&mut data, &mut scratch);
            assert_eq!(data, v);
        }
        assert_eq!(scratch.pooled(), 1, "the staging buffer is returned");
    }

    #[test]
    fn single_thread_matches_parallel() {
        // The parallel fan-out must be a pure scheduling change.
        let plan = Ntt64k::new();
        let v = sparse_input();
        let expected = plan.forward(&v);
        crate::par::set_threads(1);
        let sequential = plan.forward(&v);
        crate::par::set_threads(0);
        assert_eq!(sequential, expected);
    }

    #[test]
    fn matches_generic_mixed_radix() {
        let plan = Ntt64k::new();
        let generic = MixedRadixPlan::paper_64k();
        let v = sparse_input();
        assert_eq!(plan.forward(&v), generic.forward(&v));
    }

    #[test]
    fn alternative_factorizations_agree() {
        // The unit "can be adapted … to compute also Radix-8, Radix-16 and
        // Radix-32 FFTs. This gives us greater flexibility in choosing an
        // FFT order": any factorization of 64K must give the same spectrum.
        let plan = Ntt64k::new();
        let v = sparse_input();
        let reference = plan.forward(&v);
        for radices in [
            vec![32usize, 32, 8, 8],
            vec![16, 64, 64],
            vec![8, 8, 8, 8, 16],
        ] {
            let alt = MixedRadixPlan::new(&radices).unwrap();
            assert_eq!(alt.len(), N64K);
            assert_eq!(alt.forward(&v), reference, "radices {radices:?}");
        }
    }

    #[test]
    fn try_forward_length_check() {
        let plan = Ntt64k::new();
        assert!(matches!(
            plan.try_forward(&[Fp::ZERO; 4]),
            Err(NttError::LengthMismatch {
                expected: N64K,
                actual: 4
            })
        ));
    }

    #[test]
    fn operation_counts_match_paper_formula() {
        let (fft64, fft16, _) = Ntt64k::operation_counts();
        assert_eq!(fft64, 2048);
        assert_eq!(fft16, 4096);
    }
}
