//! Error type for transform-plan construction.

use core::fmt;

/// Error constructing or applying a transform plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NttError {
    /// The requested size is not supported by the plan
    /// (e.g. not a power of two, or not a product of the allowed radices).
    UnsupportedSize {
        /// The offending transform length.
        n: usize,
        /// Why this length cannot be planned.
        reason: &'static str,
    },
    /// The input length does not match the plan's transform length.
    LengthMismatch {
        /// The plan's transform length.
        expected: usize,
        /// The supplied input length.
        actual: usize,
    },
}

impl fmt::Display for NttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NttError::UnsupportedSize { n, reason } => {
                write!(f, "unsupported transform size {n}: {reason}")
            }
            NttError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "input length {actual} does not match plan size {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NttError {}
