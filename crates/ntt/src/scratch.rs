//! Reusable scratch buffers for the in-place transform APIs.
//!
//! Every `*_into` method in this crate stages its intermediate values in an
//! [`NttScratch`] instead of allocating fresh vectors, mirroring the
//! accelerator's fixed on-chip buffers: the FPGA performs the entire
//! three-stage 64K transform inside the PE-local memories and never touches
//! fresh storage per product. After a warm-up call per (plan, size), a
//! reused scratch serves every subsequent transform with **zero heap
//! allocations** — verified by the counting-allocator test in `he-ssa`.

use he_field::Fp;

/// A pool of reusable `Vec<Fp>` buffers.
///
/// [`NttScratch::take`] hands out a zeroed buffer of the requested length,
/// reusing the largest pooled allocation; [`NttScratch::put`] returns it.
/// The pool is intentionally dumb — transforms borrow a handful of buffers
/// in LIFO order, so a small vector of spares is exactly right.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::{Ntt64k, NttScratch, N64K};
///
/// let plan = Ntt64k::new();
/// let mut scratch = NttScratch::new();
/// let mut data = vec![Fp::ZERO; N64K];
/// data[1] = Fp::new(7);
/// let expected = plan.forward(&data);
/// plan.forward_into(&mut data, &mut scratch); // in place, no fresh buffers
/// assert_eq!(data, expected);
/// ```
#[derive(Debug, Default)]
pub struct NttScratch {
    pool: Vec<Vec<Fp>>,
}

impl NttScratch {
    /// An empty pool; buffers are created on first use.
    pub fn new() -> NttScratch {
        NttScratch { pool: Vec::new() }
    }

    /// A pool pre-warmed for a transform of `n` points, so even the first
    /// `*_into` call allocates nothing.
    pub fn for_len(n: usize) -> NttScratch {
        let mut scratch = NttScratch::new();
        let buf = scratch.take(n);
        scratch.put(buf);
        scratch
    }

    /// Borrows a zero-filled buffer of exactly `len` elements.
    ///
    /// Reuses the best-fitting pooled allocation (smallest capacity that
    /// already holds `len`, so small requests don't pin the big staging
    /// buffers); the buffer only allocates if every pooled buffer is
    /// smaller than `len`.
    pub fn take(&mut self, len: usize) -> Vec<Fp> {
        let mut buf = self.select(len);
        buf.clear();
        buf.resize(len, Fp::ZERO);
        buf
    }

    /// Best-fit selection: the smallest pooled buffer with capacity
    /// ≥ `len`, else the largest one (it grows once and then sticks).
    fn select(&mut self, len: usize) -> Vec<Fp> {
        let fitting = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let chosen = fitting.or_else(|| {
            self.pool
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
        });
        match chosen {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        }
    }

    /// Borrows a buffer of exactly `len` elements with **unspecified
    /// contents** — for staging buffers every element of which is about to
    /// be overwritten. Skips the zero-fill [`NttScratch::take`] performs.
    pub fn take_any(&mut self, len: usize) -> Vec<Fp> {
        let mut buf = self.select(len);
        buf.resize(len, Fp::ZERO);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<Fp>) {
        // Keep only buffers that actually hold an allocation.
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Number of buffers currently pooled (diagnostic).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total pooled capacity in elements (diagnostic).
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_picks_the_best_fitting_buffer() {
        let mut s = NttScratch::new();
        let big = s.take(1024);
        let big_ptr = big.as_ptr();
        s.put(big);
        let small = vec![Fp::ZERO; 16];
        let small_ptr = small.as_ptr();
        s.put(small);
        // A small request must NOT pin the big staging buffer.
        let tiny = s.take(8);
        assert_eq!(tiny.as_ptr(), small_ptr);
        // A request only the big buffer can hold reuses it.
        let mid = s.take(100);
        assert_eq!(mid.as_ptr(), big_ptr);
        assert_eq!(mid.len(), 100);
        assert!(mid.iter().all(|x| *x == Fp::ZERO));
        s.put(tiny);
        s.put(mid);
    }

    #[test]
    fn take_zeroes_previous_contents() {
        let mut s = NttScratch::new();
        let mut buf = s.take(8);
        buf.iter_mut().for_each(|x| *x = Fp::new(9));
        s.put(buf);
        assert!(s.take(8).iter().all(|x| *x == Fp::ZERO));
    }

    #[test]
    fn for_len_prewarms() {
        let mut s = NttScratch::for_len(256);
        assert_eq!(s.pooled(), 1);
        assert!(s.pooled_capacity() >= 256);
        let buf = s.take(256);
        assert_eq!(s.pooled(), 0);
        s.put(buf);
    }
}
