//! Cyclic convolution via the convolution theorem — the core of
//! Schönhage–Strassen multiplication ("compute `C = A·B` component-wise,
//! which can be easily parallelized", paper Section III).

use he_field::Fp;

use crate::error::NttError;
use crate::plan64k::{Ntt64k, N64K};
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;

/// Pointwise product of two equal-length spectra (the accelerator's
/// dot-product phase, `T_DOTPROD` in Section V).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pointwise(a: &[Fp], b: &[Fp]) -> Vec<Fp> {
    assert_eq!(a.len(), b.len(), "pointwise product requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Pointwise product accumulated into the left operand: `a[i] *= b[i]` —
/// the allocation-free dot-product phase.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pointwise_assign(a: &mut [Fp], b: &[Fp]) {
    assert_eq!(a.len(), b.len(), "pointwise product requires equal lengths");
    for (x, &y) in a.iter_mut().zip(b) {
        *x *= y;
    }
}

/// Cyclic convolution of two 64K-point sequences using the paper's
/// three-stage transform.
///
/// Thin allocating wrapper over [`cyclic_convolve_64k_into`].
///
/// # Panics
///
/// Panics if either input is not 65,536 points.
pub fn cyclic_convolve_64k(plan: &Ntt64k, a: &[Fp], b: &[Fp]) -> Vec<Fp> {
    let mut out = a.to_vec();
    cyclic_convolve_64k_into(plan, &mut out, b, &mut NttScratch::new());
    out
}

/// Cyclic convolution `a ← a ⊛ b` computed in place: two forward
/// transforms, a pointwise product and an inverse transform, all staged in
/// `scratch` — the exact accelerator dataflow, allocation-free once the
/// scratch is warm.
///
/// # Panics
///
/// Panics if either buffer is not 65,536 points.
pub fn cyclic_convolve_64k_into(plan: &Ntt64k, a: &mut [Fp], b: &[Fp], scratch: &mut NttScratch) {
    assert_eq!(a.len(), N64K);
    assert_eq!(b.len(), N64K);
    plan.forward_into(a, scratch);
    let mut fb = scratch.take_any(N64K);
    fb.copy_from_slice(b);
    plan.forward_into(&mut fb, scratch);
    pointwise_assign(a, &fb);
    scratch.put(fb);
    plan.inverse_into(a, scratch);
}

/// Cyclic convolution of two power-of-two-length sequences via radix-2^k
/// transforms (used for non-64K SSA parameter sets).
///
/// # Errors
///
/// Returns [`NttError::UnsupportedSize`] if the length is not a supported
/// power of two, or [`NttError::LengthMismatch`] if the lengths differ.
pub fn cyclic_convolve_pow2(a: &[Fp], b: &[Fp]) -> Result<Vec<Fp>, NttError> {
    if a.len() != b.len() {
        return Err(NttError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    let plan = Radix2kPlan::new(a.len())?;
    let fa = plan.forward(a);
    let fb = plan.forward(b);
    Ok(plan.inverse(&pointwise(&fa, &fb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn pow2_convolution_matches_naive() {
        let n = 64;
        let a: Vec<Fp> = (0..n as u64).map(|i| Fp::new(i + 1)).collect();
        let b: Vec<Fp> = (0..n as u64).map(|i| Fp::new(2 * i + 3)).collect();
        assert_eq!(
            cyclic_convolve_pow2(&a, &b).unwrap(),
            naive::cyclic_convolve(&a, &b)
        );
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = vec![Fp::ONE; 8];
        let b = vec![Fp::ONE; 16];
        assert!(matches!(
            cyclic_convolve_pow2(&a, &b),
            Err(NttError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn convolve_64k_with_sparse_inputs() {
        // Sparse vectors keep the naive expectation cheap: conv of impulses
        // at i and j is an impulse at i+j with the product amplitude.
        let plan = Ntt64k::new();
        let mut a = vec![Fp::ZERO; N64K];
        let mut b = vec![Fp::ZERO; N64K];
        a[5] = Fp::new(3);
        a[100] = Fp::new(7);
        b[11] = Fp::new(10);
        b[65_535] = Fp::new(2);
        let c = cyclic_convolve_64k(&plan, &a, &b);
        let mut expected = vec![Fp::ZERO; N64K];
        expected[16] += Fp::new(30); // 5+11
        expected[111] += Fp::new(70); // 100+11
        expected[(5 + 65_535) % N64K] += Fp::new(6);
        expected[(100 + 65_535) % N64K] += Fp::new(14);
        assert_eq!(c, expected);
    }
}
