//! Quadratic reference DFT: the ground truth every fast transform in this
//! workspace is checked against.

use he_field::{roots, Fp};

/// Computes the `n`-point DFT `F[k] = Σ_i a[i]·ω^{ik}` directly.
///
/// `omega` must be a primitive `n`-th root of unity (use
/// [`he_field::roots::root_of_unity`]).
///
/// ```
/// use he_field::{roots, Fp};
/// use he_ntt::naive;
///
/// let omega = roots::root_of_unity(4).unwrap();
/// let spectrum = naive::dft(&[Fp::ONE; 4], omega);
/// // The DFT of a constant is an impulse of height n.
/// assert_eq!(spectrum, vec![Fp::new(4), Fp::ZERO, Fp::ZERO, Fp::ZERO]);
/// ```
pub fn dft(input: &[Fp], omega: Fp) -> Vec<Fp> {
    let n = input.len();
    let table = roots::power_table(omega, n);
    (0..n)
        .map(|k| {
            input
                .iter()
                .enumerate()
                .map(|(i, &a)| a * table[i * k % n])
                .sum()
        })
        .collect()
}

/// [`dft`] into a caller-provided buffer, allocation-free (twiddle powers
/// are accumulated incrementally instead of tabulated). Used by the
/// in-place mixed-radix path for base cases without a shift-only kernel.
///
/// # Panics
///
/// Panics if the buffer lengths differ.
pub fn dft_into(input: &[Fp], out: &mut [Fp], omega: Fp) {
    assert_eq!(input.len(), out.len(), "output length must match the input");
    let mut wk = Fp::ONE; // ω^k
    for slot in out.iter_mut() {
        let mut acc = Fp::ZERO;
        let mut wik = Fp::ONE; // ω^{i·k}
        for &a in input {
            acc += a * wik;
            wik *= wk;
        }
        *slot = acc;
        wk *= omega;
    }
}

/// Computes the inverse DFT (including the `1/n` scaling).
///
/// # Panics
///
/// Panics if `n` is not invertible modulo `p` (never the case for the
/// power-of-two sizes used here).
pub fn idft(input: &[Fp], omega: Fp) -> Vec<Fp> {
    let n = input.len();
    let omega_inv = omega.inverse().expect("omega is a root of unity");
    let n_inv = Fp::new(n as u64).inverse().expect("n invertible");
    dft(input, omega_inv)
        .into_iter()
        .map(|x| x * n_inv)
        .collect()
}

/// Cyclic convolution by the definition `c[k] = Σ_{i+j ≡ k (mod n)} a[i]·b[j]`.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
pub fn cyclic_convolve(a: &[Fp], b: &[Fp]) -> Vec<Fp> {
    assert_eq!(
        a.len(),
        b.len(),
        "convolution operands must match in length"
    );
    let n = a.len();
    let mut out = vec![Fp::ZERO; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai.is_zero() {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let k = (i + j) % n;
            out[k] += ai * bj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_transforms_to_constant() {
        let omega = roots::root_of_unity(8).unwrap();
        let mut input = vec![Fp::ZERO; 8];
        input[0] = Fp::new(7);
        assert_eq!(dft(&input, omega), vec![Fp::new(7); 8]);
    }

    #[test]
    fn roundtrip() {
        let omega = roots::root_of_unity(16).unwrap();
        let input: Vec<Fp> = (0..16).map(|i| Fp::new(i * i + 1)).collect();
        assert_eq!(idft(&dft(&input, omega), omega), input);
    }

    #[test]
    fn shifted_impulse_gives_geometric_series() {
        let omega = roots::root_of_unity(8).unwrap();
        let mut input = vec![Fp::ZERO; 8];
        input[1] = Fp::ONE;
        let spectrum = dft(&input, omega);
        for (k, &v) in spectrum.iter().enumerate() {
            assert_eq!(v, omega.pow(k as u64));
        }
    }

    #[test]
    fn convolution_theorem_by_hand() {
        let omega = roots::root_of_unity(8).unwrap();
        let a: Vec<Fp> = (1..=8).map(Fp::new).collect();
        let b: Vec<Fp> = (0..8).map(|i| Fp::new(i * 3 + 2)).collect();
        let expected = cyclic_convolve(&a, &b);
        let fa = dft(&a, omega);
        let fb = dft(&b, omega);
        let pointwise: Vec<Fp> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        assert_eq!(idft(&pointwise, omega), expected);
    }
}
