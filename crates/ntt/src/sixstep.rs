//! The six-step (transpose-based) transform — the textbook realization of
//! the paper's Eq. 1 decomposition `N = N1·N2`.
//!
//! Section III derives the general Cooley–Tukey splitting
//!
//! ```text
//! F[N1·k2 + k1] = Σ_{n2} [ ( Σ_{n1} f[N2·n1 + n2]·ω_{N1}^{n1·k1} )·ω_N^{n2·k1} ]·ω_{N2}^{n2·k2}
//! ```
//!
//! The paper applies it recursively to get the three-stage radix-64/16
//! plan; applied *once* with explicit matrix transposes it is the
//! "four-step/six-step" algorithm common on shared-memory machines:
//!
//! 1. transpose the `N1 × N2` coefficient matrix;
//! 2. `N2` transforms of length `N1` (now row-contiguous);
//! 3. multiply by the twiddles `ω_N^{n2·k1}`;
//! 4. transpose back;
//! 5. `N1` transforms of length `N2`;
//! 6. transpose into the output ordering.
//!
//! It computes exactly the same DFT as [`Radix2Plan`] and the paper's
//! [`crate::Ntt64k`] — asserted by tests — and serves as the
//! shared-memory counterpoint to the paper's distributed schedule: the
//! transposes are the all-to-all traffic the hypercube exchanges
//! implement, made explicit.
//!
//! ```
//! use he_field::Fp;
//! use he_ntt::{Radix2Plan, SixStepPlan};
//!
//! let six = SixStepPlan::new(16, 64)?; // 1024 points as a 16 × 64 matrix
//! let reference = Radix2Plan::new(1024)?;
//! let data: Vec<Fp> = (0..1024).map(Fp::new).collect();
//! assert_eq!(six.forward(&data), reference.forward(&data));
//! # Ok::<(), he_ntt::NttError>(())
//! ```

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::radix2::Radix2Plan;

/// A planned `N = N1·N2` six-step transform.
#[derive(Debug, Clone)]
pub struct SixStepPlan {
    n1: usize,
    n2: usize,
    omega: Fp,
    omega_inv: Fp,
    /// Length-`n1` sub-transform with root `ω^{N2}`.
    col_plan: Radix2Plan,
    /// Length-`n2` sub-transform with root `ω^{N1}`.
    row_plan: Radix2Plan,
}

impl SixStepPlan {
    /// Plans an `(n1, n2)` decomposition of an `n1·n2`-point transform,
    /// using the same canonical root as [`Radix2Plan::new`] so results are
    /// interchangeable.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] unless `n1` and `n2` are
    /// powers of two `≥ 2` and `n1·n2` divides `p − 1`.
    pub fn new(n1: usize, n2: usize) -> Result<SixStepPlan, NttError> {
        let n = n1.checked_mul(n2).ok_or(NttError::UnsupportedSize {
            n: usize::MAX,
            reason: "n1*n2 overflows",
        })?;
        let omega = roots::root_of_unity(n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "length must divide p-1",
        })?;
        let col_plan = Radix2Plan::with_omega(n1, omega.pow(n2 as u64))?;
        let row_plan = Radix2Plan::with_omega(n2, omega.pow(n1 as u64))?;
        Ok(SixStepPlan {
            n1,
            n2,
            omega,
            omega_inv: omega.inverse().expect("root of unity is invertible"),
            col_plan,
            row_plan,
        })
    }

    /// The square-ish decomposition of a 64K transform (256 × 256).
    ///
    /// # Panics
    ///
    /// Never panics: 256 × 256 is always plannable.
    pub fn square_64k() -> SixStepPlan {
        SixStepPlan::new(256, 256).expect("256 x 256 is a valid plan")
    }

    /// Total transform length `N = N1·N2`.
    pub fn len(&self) -> usize {
        self.n1 * self.n2
    }

    /// Whether the plan is empty (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `(N1, N2)` factorization.
    pub fn factors(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// The primitive `N`-th root of unity in use.
    pub fn omega(&self) -> Fp {
        self.omega
    }

    /// Forward transform (natural order in, natural order out).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        assert_eq!(input.len(), self.len(), "input length must be N1*N2");
        // Input matrix A[n1][n2] = f[N2·n1 + n2] is row-major as given.
        // Step 1: transpose to N2 × N1 so columns become contiguous rows.
        let t = transpose(input, self.n1, self.n2);
        // Step 2: N2 length-N1 transforms (over n1, producing digit k1).
        let mut g = Vec::with_capacity(self.len());
        for row in t.chunks_exact(self.n1) {
            g.extend(self.col_plan.forward(row));
        }
        // Step 3: twiddle G[n2][k1] by ω^{n2·k1}, row by row.
        for (n2, row) in g.chunks_exact_mut(self.n1).enumerate() {
            let step = self.omega.pow(n2 as u64);
            let mut w = Fp::ONE;
            for value in row.iter_mut() {
                *value = *value * w;
                w = w * step;
            }
        }
        // Step 4: transpose back to N1 × N2 (rows indexed by k1).
        let u = transpose(&g, self.n2, self.n1);
        // Step 5: N1 length-N2 transforms (over n2, producing digit k2).
        let mut h = Vec::with_capacity(self.len());
        for row in u.chunks_exact(self.n2) {
            h.extend(self.row_plan.forward(row));
        }
        // Step 6: transpose so F[N1·k2 + k1] — k1 is the fast output digit.
        transpose(&h, self.n1, self.n2)
    }

    /// Inverse transform (exact inverse of [`SixStepPlan::forward`],
    /// including the `1/N` scaling).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        assert_eq!(input.len(), self.len(), "input length must be N1*N2");
        // Undo step 6: back to H[k1][k2].
        let h = transpose(input, self.n2, self.n1);
        // Undo step 5: inverse length-N2 transforms (scales by 1/N2).
        let mut u = Vec::with_capacity(self.len());
        for row in h.chunks_exact(self.n2) {
            u.extend(self.row_plan.inverse(row));
        }
        // Undo step 4: to G[n2][k1].
        let mut g = transpose(&u, self.n1, self.n2);
        // Undo step 3: inverse twiddles ω^{-n2·k1}.
        for (n2, row) in g.chunks_exact_mut(self.n1).enumerate() {
            let step = self.omega_inv.pow(n2 as u64);
            let mut w = Fp::ONE;
            for value in row.iter_mut() {
                *value = *value * w;
                w = w * step;
            }
        }
        // Undo step 2: inverse length-N1 transforms (scales by 1/N1).
        let mut t = Vec::with_capacity(self.len());
        for row in g.chunks_exact(self.n1) {
            t.extend(self.col_plan.inverse(row));
        }
        // Undo step 1.
        transpose(&t, self.n2, self.n1)
    }
}

/// Transposes a row-major `rows × cols` matrix.
fn transpose(src: &[Fp], rows: usize, cols: usize) -> Vec<Fp> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut dst = vec![Fp::ZERO; src.len()];
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::plan64k::Ntt64k;

    fn ramp(n: usize) -> Vec<Fp> {
        (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i)))
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_small_sizes() {
        for (n1, n2) in [(2usize, 2usize), (2, 4), (4, 4), (8, 4), (4, 16)] {
            let plan = SixStepPlan::new(n1, n2).unwrap();
            let input = ramp(n1 * n2);
            let expected = naive::dft(&input, plan.omega());
            assert_eq!(plan.forward(&input), expected, "({n1}, {n2})");
        }
    }

    #[test]
    fn matches_radix2_plan_across_shapes() {
        for (n1, n2) in [(4usize, 64usize), (64, 4), (16, 16), (32, 128), (128, 32)] {
            let n = n1 * n2;
            let six = SixStepPlan::new(n1, n2).unwrap();
            let reference = Radix2Plan::new(n).unwrap();
            let input = ramp(n);
            assert_eq!(six.forward(&input), reference.forward(&input), "({n1}, {n2})");
        }
    }

    #[test]
    fn rectangular_and_square_factorizations_agree() {
        let input = ramp(4096);
        let square = SixStepPlan::new(64, 64).unwrap();
        let tall = SixStepPlan::new(256, 16).unwrap();
        let wide = SixStepPlan::new(16, 256).unwrap();
        let expected = square.forward(&input);
        assert_eq!(tall.forward(&input), expected);
        assert_eq!(wide.forward(&input), expected);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for (n1, n2) in [(4usize, 8usize), (16, 16), (64, 16)] {
            let plan = SixStepPlan::new(n1, n2).unwrap();
            let input = ramp(n1 * n2);
            assert_eq!(plan.inverse(&plan.forward(&input)), input, "({n1}, {n2})");
        }
    }

    #[test]
    fn square_64k_matches_the_paper_plan() {
        // The paper's three-stage 64K transform and the 256×256 six-step
        // transform are the same mathematical object (both are Eq. 1).
        let six = SixStepPlan::square_64k();
        assert_eq!(six.len(), 65_536);
        assert_eq!(six.factors(), (256, 256));
        let paper = Ntt64k::new();
        let input = ramp(65_536);
        let a = six.forward(&input);
        let b = paper.forward(&input);
        assert_eq!(a, b);
        assert_eq!(six.inverse(&a), input);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        assert!(SixStepPlan::new(3, 4).is_err()); // not a power of two
        assert!(SixStepPlan::new(0, 4).is_err());
        assert!(SixStepPlan::new(1, 4).is_err()); // sub-plan needs ≥ 2
    }

    #[test]
    #[should_panic(expected = "input length must be N1*N2")]
    fn forward_checks_length() {
        SixStepPlan::new(4, 4).unwrap().forward(&ramp(15));
    }

    #[test]
    fn transpose_involution() {
        let m = ramp(24);
        assert_eq!(transpose(&transpose(&m, 4, 6), 6, 4), m);
    }
}
