//! The six-step (transpose-based) transform — the textbook realization of
//! the paper's Eq. 1 decomposition `N = N1·N2`.
//!
//! Section III derives the general Cooley–Tukey splitting
//!
//! ```text
//! F[N1·k2 + k1] = Σ_{n2} [ ( Σ_{n1} f[N2·n1 + n2]·ω_{N1}^{n1·k1} )·ω_N^{n2·k1} ]·ω_{N2}^{n2·k2}
//! ```
//!
//! The paper applies it recursively to get the three-stage radix-64/16
//! plan; applied *once* with explicit matrix transposes it is the
//! "four-step/six-step" algorithm common on shared-memory machines:
//!
//! 1. transpose the `N1 × N2` coefficient matrix;
//! 2. `N2` transforms of length `N1` (now row-contiguous);
//! 3. multiply by the twiddles `ω_N^{n2·k1}`;
//! 4. transpose back;
//! 5. `N1` transforms of length `N2`;
//! 6. transpose into the output ordering.
//!
//! It computes exactly the same DFT as [`crate::Radix2Plan`] and the paper's
//! [`crate::Ntt64k`] — asserted by tests — and serves as the
//! shared-memory counterpoint to the paper's distributed schedule: the
//! transposes are the all-to-all traffic the hypercube exchanges
//! implement, made explicit.
//!
//! ```
//! use he_field::Fp;
//! use he_ntt::{Radix2Plan, SixStepPlan};
//!
//! let six = SixStepPlan::new(16, 64)?; // 1024 points as a 16 × 64 matrix
//! let reference = Radix2Plan::new(1024)?;
//! let data: Vec<Fp> = (0..1024).map(Fp::new).collect();
//! assert_eq!(six.forward(&data), reference.forward(&data));
//! # Ok::<(), he_ntt::NttError>(())
//! ```

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::par;
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;

/// A planned `N = N1·N2` six-step transform.
#[derive(Debug, Clone)]
pub struct SixStepPlan {
    n1: usize,
    n2: usize,
    omega: Fp,
    omega_inv: Fp,
    /// Length-`n1` sub-transform with root `ω^{N2}` (radix-2^k compiled).
    col_plan: Radix2kPlan,
    /// Length-`n2` sub-transform with root `ω^{N1}` (radix-2^k compiled).
    row_plan: Radix2kPlan,
}

impl SixStepPlan {
    /// Plans an `(n1, n2)` decomposition of an `n1·n2`-point transform,
    /// using the same canonical root as [`crate::Radix2Plan::new`] so results are
    /// interchangeable.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] unless `n1` and `n2` are
    /// powers of two `≥ 2` and `n1·n2` divides `p − 1`.
    pub fn new(n1: usize, n2: usize) -> Result<SixStepPlan, NttError> {
        let n = n1.checked_mul(n2).ok_or(NttError::UnsupportedSize {
            n: usize::MAX,
            reason: "n1*n2 overflows",
        })?;
        let omega = roots::root_of_unity(n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "length must divide p-1",
        })?;
        let col_plan = Radix2kPlan::with_omega(n1, omega.pow(n2 as u64))?;
        let row_plan = Radix2kPlan::with_omega(n2, omega.pow(n1 as u64))?;
        Ok(SixStepPlan {
            n1,
            n2,
            omega,
            omega_inv: omega.inverse().expect("root of unity is invertible"),
            col_plan,
            row_plan,
        })
    }

    /// The square-ish decomposition of a 64K transform (256 × 256).
    ///
    /// # Panics
    ///
    /// Never panics: 256 × 256 is always plannable.
    pub fn square_64k() -> SixStepPlan {
        SixStepPlan::new(256, 256).expect("256 x 256 is a valid plan")
    }

    /// Total transform length `N = N1·N2`.
    pub fn len(&self) -> usize {
        self.n1 * self.n2
    }

    /// Whether the plan is empty (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `(N1, N2)` factorization.
    pub fn factors(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// The primitive `N`-th root of unity in use.
    pub fn omega(&self) -> Fp {
        self.omega
    }

    /// Bytes held by the row and column sub-plans' precomputed twiddle
    /// tables (the step-3 twiddles are generated on the fly). Computed
    /// once at construction and shared by every transform.
    pub fn table_bytes(&self) -> usize {
        self.col_plan.table_bytes() + self.row_plan.table_bytes()
    }

    /// Forward transform (natural order in, natural order out).
    ///
    /// Thin allocating wrapper over [`SixStepPlan::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_into(&mut data, &mut NttScratch::new());
        data
    }

    /// Inverse transform (exact inverse of [`SixStepPlan::forward`],
    /// including the `1/N` scaling).
    ///
    /// Thin allocating wrapper over [`SixStepPlan::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_into(&mut data, &mut NttScratch::new());
        data
    }

    /// In-place forward transform staging through `scratch`; the
    /// independent row transforms of steps 2 and 5 run multi-core with the
    /// `parallel` feature.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        assert_eq!(data.len(), self.len(), "input length must be N1*N2");
        let mut t = scratch.take_any(self.len());
        // Input matrix A[n1][n2] = f[N2·n1 + n2] is row-major as given.
        // Step 1: transpose to N2 × N1 so columns become contiguous rows.
        transpose_into(data, &mut t, self.n1, self.n2);
        // Step 2: N2 length-N1 transforms (over n1, producing digit k1),
        // one independent in-place transform per row.
        // Step 3: twiddle G[n2][k1] by ω^{n2·k1}, row by row.
        par::for_each_chunk(&mut t, self.n1, |n2, row| {
            self.col_plan
                .forward_in_place(row)
                .expect("row length matches the column plan");
            let step = self.omega.pow(n2 as u64);
            let mut w = Fp::ONE;
            for value in row.iter_mut() {
                *value *= w;
                w *= step;
            }
        });
        // Step 4: transpose back to N1 × N2 (rows indexed by k1).
        transpose_into(&t, data, self.n2, self.n1);
        // Step 5: N1 length-N2 transforms (over n2, producing digit k2).
        par::for_each_chunk(data, self.n2, |_, row| {
            self.row_plan
                .forward_in_place(row)
                .expect("row length matches the row plan");
        });
        // Step 6: transpose so F[N1·k2 + k1] — k1 is the fast output digit.
        transpose_into(data, &mut t, self.n1, self.n2);
        data.copy_from_slice(&t);
        scratch.put(t);
    }

    /// In-place inverse transform (including the `1/N` scaling) staging
    /// through `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        assert_eq!(data.len(), self.len(), "input length must be N1*N2");
        let mut t = scratch.take_any(self.len());
        // Undo step 6: back to H[k1][k2].
        transpose_into(data, &mut t, self.n2, self.n1);
        // Undo step 5: inverse length-N2 transforms (scales by 1/N2).
        par::for_each_chunk(&mut t, self.n2, |_, row| {
            self.row_plan
                .inverse_in_place(row)
                .expect("row length matches the row plan");
        });
        // Undo step 4: to G[n2][k1].
        transpose_into(&t, data, self.n1, self.n2);
        // Undo step 3: inverse twiddles ω^{-n2·k1}.
        // Undo step 2: inverse length-N1 transforms (scales by 1/N1).
        par::for_each_chunk(data, self.n1, |n2, row| {
            let step = self.omega_inv.pow(n2 as u64);
            let mut w = Fp::ONE;
            for value in row.iter_mut() {
                *value *= w;
                w *= step;
            }
            self.col_plan
                .inverse_in_place(row)
                .expect("row length matches the column plan");
        });
        // Undo step 1.
        transpose_into(data, &mut t, self.n2, self.n1);
        data.copy_from_slice(&t);
        scratch.put(t);
    }
}

/// Transposes a row-major `rows × cols` matrix (test reference; the
/// transform paths use [`transpose_into`] with pooled buffers).
#[cfg(test)]
fn transpose(src: &[Fp], rows: usize, cols: usize) -> Vec<Fp> {
    let mut dst = vec![Fp::ZERO; src.len()];
    transpose_into(src, &mut dst, rows, cols);
    dst
}

/// Edge length of the square transpose tiles: 32 × 32 `Fp` is 8 KiB,
/// so one source tile and one destination tile sit in L1 together and
/// every cache line fetched is fully used before eviction.
const TRANSPOSE_TILE: usize = 32;

/// Transposes a row-major `rows × cols` matrix into `dst` (column-major,
/// i.e. a row-major `cols × rows` matrix), walking the matrix in
/// [`TRANSPOSE_TILE`]-square cache blocks instead of full strided
/// columns — the cache-blocked interleave that keeps steps 1/4/6 from
/// thrashing on large matrices.
fn transpose_into(src: &[Fp], dst: &mut [Fp], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), src.len());
    for rt in (0..rows).step_by(TRANSPOSE_TILE) {
        let r_end = (rt + TRANSPOSE_TILE).min(rows);
        for ct in (0..cols).step_by(TRANSPOSE_TILE) {
            let c_end = (ct + TRANSPOSE_TILE).min(cols);
            for r in rt..r_end {
                for c in ct..c_end {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::plan64k::Ntt64k;
    use crate::radix2::Radix2Plan;

    fn ramp(n: usize) -> Vec<Fp> {
        (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i)))
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_small_sizes() {
        for (n1, n2) in [(2usize, 2usize), (2, 4), (4, 4), (8, 4), (4, 16)] {
            let plan = SixStepPlan::new(n1, n2).unwrap();
            let input = ramp(n1 * n2);
            let expected = naive::dft(&input, plan.omega());
            assert_eq!(plan.forward(&input), expected, "({n1}, {n2})");
        }
    }

    #[test]
    fn matches_radix2_plan_across_shapes() {
        for (n1, n2) in [(4usize, 64usize), (64, 4), (16, 16), (32, 128), (128, 32)] {
            let n = n1 * n2;
            let six = SixStepPlan::new(n1, n2).unwrap();
            let reference = Radix2Plan::new(n).unwrap();
            let input = ramp(n);
            assert_eq!(
                six.forward(&input),
                reference.forward(&input),
                "({n1}, {n2})"
            );
        }
    }

    #[test]
    fn rectangular_and_square_factorizations_agree() {
        let input = ramp(4096);
        let square = SixStepPlan::new(64, 64).unwrap();
        let tall = SixStepPlan::new(256, 16).unwrap();
        let wide = SixStepPlan::new(16, 256).unwrap();
        let expected = square.forward(&input);
        assert_eq!(tall.forward(&input), expected);
        assert_eq!(wide.forward(&input), expected);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for (n1, n2) in [(4usize, 8usize), (16, 16), (64, 16)] {
            let plan = SixStepPlan::new(n1, n2).unwrap();
            let input = ramp(n1 * n2);
            assert_eq!(plan.inverse(&plan.forward(&input)), input, "({n1}, {n2})");
        }
    }

    #[test]
    fn square_64k_matches_the_paper_plan() {
        // The paper's three-stage 64K transform and the 256×256 six-step
        // transform are the same mathematical object (both are Eq. 1).
        let six = SixStepPlan::square_64k();
        assert_eq!(six.len(), 65_536);
        assert_eq!(six.factors(), (256, 256));
        let paper = Ntt64k::new();
        let input = ramp(65_536);
        let a = six.forward(&input);
        let b = paper.forward(&input);
        assert_eq!(a, b);
        assert_eq!(six.inverse(&a), input);
    }

    #[test]
    fn rejects_unsupported_shapes() {
        assert!(SixStepPlan::new(3, 4).is_err()); // not a power of two
        assert!(SixStepPlan::new(0, 4).is_err());
        assert!(SixStepPlan::new(1, 4).is_err()); // sub-plan needs ≥ 2
    }

    #[test]
    #[should_panic(expected = "input length must be N1*N2")]
    fn forward_checks_length() {
        SixStepPlan::new(4, 4).unwrap().forward(&ramp(15));
    }

    #[test]
    fn into_matches_allocating_across_shapes() {
        let mut scratch = NttScratch::new();
        for (n1, n2) in [(4usize, 8usize), (16, 16), (64, 16), (256, 256)] {
            let plan = SixStepPlan::new(n1, n2).unwrap();
            let input = ramp(n1 * n2);
            let expected = plan.forward(&input);
            let mut data = input.clone();
            // Reuse one scratch across shapes and repeated calls.
            for _ in 0..2 {
                plan.forward_into(&mut data, &mut scratch);
                assert_eq!(data, expected, "({n1}, {n2})");
                plan.inverse_into(&mut data, &mut scratch);
                assert_eq!(data, input, "({n1}, {n2})");
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = ramp(24);
        assert_eq!(transpose(&transpose(&m, 4, 6), 6, 4), m);
    }
}
