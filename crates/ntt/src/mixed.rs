//! General mixed-radix Cooley–Tukey decomposition (paper Eq. 1).
//!
//! For `N = R·M` and index split `n = M·d + m` (`d` the high digit), the
//! DFT factors as
//!
//! ```text
//! F[kA + R·kB] = Σ_m [ (Σ_d a[M·d + m]·ω_R^{d·kA}) · ω^{kA·m} ] · ω_M^{m·kB}
//! ```
//!
//! — an inner `R`-point DFT per residue `m`, a twiddle multiplication
//! (the accelerator's DSP-based modular multipliers), and a recursive
//! `M`-point transform. Choosing radices from `{8, 16, 32, 64}` makes every
//! inner DFT shift-only ([`crate::kernels`]); the paper's 64K plan is the
//! radix list `[64, 64, 16]` (see [`crate::Ntt64k`] for the specialized
//! version with precomputed tables).

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::kernels::{self, Direction};
use crate::naive;
use crate::radix2k::Radix2kPlan;
use crate::scratch::NttScratch;

/// A planned mixed-radix NTT.
///
/// Input and output are in natural order.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::MixedRadixPlan;
///
/// // A 4096-point transform as radix-64 × radix-64.
/// let plan = MixedRadixPlan::new(&[64, 64])?;
/// let input: Vec<Fp> = (0..4096).map(Fp::new).collect();
/// let freq = plan.forward(&input);
/// assert_eq!(plan.inverse(&freq), input);
/// # Ok::<(), he_ntt::NttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MixedRadixPlan {
    n: usize,
    radices: Vec<usize>,
    omega: Fp,
    /// `omega^e` for `e` in `[0, n)`.
    forward_table: Vec<Fp>,
    n_inv: Fp,
    /// Radix-2^k engine executing the transform for power-of-two lengths;
    /// `None` for non-power-of-two plans and [`MixedRadixPlan::reference`]
    /// plans (which run the recursion itself).
    engine: Option<Radix2kPlan>,
}

impl MixedRadixPlan {
    /// Plans a transform of length `Π radices` with the canonical root.
    ///
    /// Radices are listed outermost-first: `radices[0]` is the first
    /// computation stage (the paper's stage operating on the
    /// highest-stride digit).
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] if the radix list is empty, a
    /// radix is `< 2`, or the product does not divide `p − 1`.
    pub fn new(radices: &[usize]) -> Result<MixedRadixPlan, NttError> {
        let mut plan = MixedRadixPlan::reference(radices)?;
        if plan.n.is_power_of_two() && plan.n >= 2 {
            // The recursion and the radix-2^k engine compute the same DFT
            // on the same root, so the faster engine can execute the plan;
            // the radix list stays the plan's observable structure.
            plan.engine = Some(Radix2kPlan::with_omega(plan.n, plan.omega)?);
        }
        Ok(plan)
    }

    /// Plans the same transform as [`MixedRadixPlan::new`] but always
    /// executes the Eq. 1 recursion itself, even for power-of-two lengths
    /// where `new` would delegate to the radix-2^k engine. This is the
    /// independent reference implementation cross-validation tests compare
    /// the compiled kernels against.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] under the same conditions as
    /// [`MixedRadixPlan::new`].
    pub fn reference(radices: &[usize]) -> Result<MixedRadixPlan, NttError> {
        if radices.is_empty() {
            return Err(NttError::UnsupportedSize {
                n: 0,
                reason: "at least one radix is required",
            });
        }
        if let Some(&r) = radices.iter().find(|&&r| r < 2) {
            return Err(NttError::UnsupportedSize {
                n: r,
                reason: "radices must be at least 2",
            });
        }
        let n: usize = radices.iter().product();
        let omega = roots::root_of_unity(n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "transform length must divide p-1",
        })?;
        let forward_table = roots::power_table(omega, n);
        let n_inv = Fp::new(n as u64).inverse().expect("n < p");
        Ok(MixedRadixPlan {
            n,
            radices: radices.to_vec(),
            omega,
            forward_table,
            n_inv,
            engine: None,
        })
    }

    /// The paper's 64K-point plan: radix-64, radix-64, radix-16.
    pub fn paper_64k() -> MixedRadixPlan {
        MixedRadixPlan::new(&[64, 64, 16]).expect("64·64·16 divides p-1")
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The radix list, outermost stage first.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The primitive root used by the plan.
    pub fn omega(&self) -> Fp {
        self.omega
    }

    /// Bytes held by the plan's precomputed twiddle tables (the `ω^e`
    /// lookup table plus, when the plan delegates to the radix-2^k
    /// engine, the engine's stage and micro tables). Computed once at
    /// construction and shared by every transform.
    pub fn table_bytes(&self) -> usize {
        std::mem::size_of_val(self.forward_table.as_slice())
            + self.engine.as_ref().map_or(0, Radix2kPlan::table_bytes)
    }

    /// Forward transform.
    ///
    /// Thin allocating wrapper over [`MixedRadixPlan::forward_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_into(&mut data, &mut NttScratch::new());
        data
    }

    /// Inverse transform including the `1/n` scaling.
    ///
    /// Thin allocating wrapper over [`MixedRadixPlan::inverse_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_into(&mut data, &mut NttScratch::new());
        data
    }

    /// In-place forward transform staging through `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn forward_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        assert_eq!(data.len(), self.n, "input length must equal plan length");
        if let Some(engine) = &self.engine {
            engine
                .forward_in_place(data)
                .expect("length asserted above");
            return;
        }
        let mut out = scratch.take_any(self.n);
        self.transform_rec(
            data,
            &mut out,
            1,
            &self.radices,
            Direction::Forward,
            scratch,
        );
        data.copy_from_slice(&out);
        scratch.put(out);
    }

    /// In-place inverse transform (including the `1/n` scaling) staging
    /// through `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the plan length.
    pub fn inverse_into(&self, data: &mut [Fp], scratch: &mut NttScratch) {
        assert_eq!(data.len(), self.n, "input length must equal plan length");
        if let Some(engine) = &self.engine {
            engine
                .inverse_in_place(data)
                .expect("length asserted above");
            return;
        }
        let mut out = scratch.take_any(self.n);
        self.transform_rec(
            data,
            &mut out,
            1,
            &self.radices,
            Direction::Inverse,
            scratch,
        );
        for (slot, &v) in data.iter_mut().zip(out.iter()) {
            *slot = v * self.n_inv;
        }
        scratch.put(out);
    }

    /// Looks up `ω^{±(stride·e)}` from the precomputed table.
    #[inline]
    fn tw(&self, stride: usize, e: usize, direction: Direction) -> Fp {
        // stride ≤ n and e % n < n, so the product fits 64-bit usize for all
        // plannable sizes (n ≤ 2^26).
        let idx = (stride * (e % self.n)) % self.n;
        match direction {
            Direction::Forward => self.forward_table[idx],
            Direction::Inverse => self.forward_table[(self.n - idx) % self.n],
        }
    }

    /// Recursive Cooley–Tukey step writing into `out`. `stride` expresses
    /// the current level's root as `ω_level = ω^stride`; all intermediate
    /// buffers come from (and return to) `scratch`.
    fn transform_rec(
        &self,
        input: &[Fp],
        out: &mut [Fp],
        stride: usize,
        radices: &[usize],
        direction: Direction,
        scratch: &mut NttScratch,
    ) {
        let len = input.len();
        debug_assert_eq!(out.len(), len);
        if radices.len() == 1 {
            self.base_dft_into(input, out, stride, direction);
            return;
        }
        let r = radices[0];
        let m_len = len / r;
        debug_assert_eq!(m_len * r, len);

        // Inner R-point DFTs over the high digit, one per residue m.
        // g[kA·m_len + m] = Σ_d input[M·d + m]·ω_R^{d·kA}
        let mut g = scratch.take_any(len);
        let mut column = scratch.take_any(r);
        let mut sub = scratch.take_any(r);
        for m in 0..m_len {
            for (d, c) in column.iter_mut().enumerate() {
                *c = input[m_len * d + m];
            }
            self.base_dft_into(&column, &mut sub, stride * m_len, direction);
            for (ka, &v) in sub.iter().enumerate() {
                g[ka * m_len + m] = v;
            }
        }
        scratch.put(column);
        scratch.put(sub);

        // Twiddle + recurse on each row.
        let mut row_out = scratch.take_any(m_len);
        for ka in 0..r {
            let row = &mut g[ka * m_len..(ka + 1) * m_len];
            if ka > 0 {
                for (m, v) in row.iter_mut().enumerate() {
                    *v *= self.tw(stride, ka * m, direction);
                }
            }
            self.transform_rec(
                row,
                &mut row_out,
                stride * r,
                &radices[1..],
                direction,
                scratch,
            );
            for (kb, &v) in row_out.iter().enumerate() {
                out[ka + r * kb] = v;
            }
        }
        scratch.put(row_out);
        scratch.put(g);
    }

    /// Base-case DFT with root `ω^stride` into `out`; uses the shift-only
    /// kernel when the root matches the canonical power-of-two root.
    fn base_dft_into(&self, input: &[Fp], out: &mut [Fp], stride: usize, direction: Direction) {
        let r = input.len();
        let omega_base = self.tw(stride, 1, Direction::Forward);
        if kernels::supports(r) {
            let canonical = roots::root_of_unity(r as u64).expect("r divides 192");
            if omega_base == canonical {
                kernels::ntt_small_into(input, out, direction).expect("size checked");
                return;
            }
        }
        match direction {
            Direction::Forward => naive::dft_into(input, out, omega_base),
            Direction::Inverse => {
                naive::dft_into(input, out, omega_base.inverse().expect("root is nonzero"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Fp> {
        (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect()
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(MixedRadixPlan::new(&[]).is_err());
        assert!(MixedRadixPlan::new(&[1]).is_err());
        assert!(MixedRadixPlan::new(&[64, 0]).is_err());
        // 3·7 = 21 does not divide p−1? p−1 = 2^32·3·5·17·257·65537, so 21
        // does NOT divide (no factor 7).
        assert!(MixedRadixPlan::new(&[3, 7]).is_err());
    }

    #[test]
    fn single_stage_matches_kernel_sizes() {
        for r in [8usize, 16, 32, 64] {
            let plan = MixedRadixPlan::new(&[r]).unwrap();
            let input = ramp(r);
            assert_eq!(
                plan.forward(&input),
                naive::dft(&input, plan.omega()),
                "r = {r}"
            );
        }
    }

    #[test]
    fn two_stage_matches_naive() {
        for radices in [[8usize, 8], [16, 8], [8, 16], [16, 16], [64, 16]] {
            let plan = MixedRadixPlan::new(&radices).unwrap();
            let input = ramp(plan.len());
            assert_eq!(
                plan.forward(&input),
                naive::dft(&input, plan.omega()),
                "radices = {radices:?}"
            );
        }
    }

    #[test]
    fn three_stage_roundtrip() {
        for radices in [[8usize, 8, 8], [16, 8, 8], [32, 16, 8]] {
            let plan = MixedRadixPlan::new(&radices).unwrap();
            let input = ramp(plan.len());
            assert_eq!(
                plan.inverse(&plan.forward(&input)),
                input,
                "radices = {radices:?}"
            );
        }
    }

    #[test]
    fn non_power_of_two_radices_work() {
        // Radix 3 and 5 divide p−1; base case falls back to the naive DFT.
        let plan = MixedRadixPlan::new(&[3, 5]).unwrap();
        let input = ramp(15);
        assert_eq!(plan.forward(&input), naive::dft(&input, plan.omega()));
        assert_eq!(plan.inverse(&plan.forward(&input)), input);
    }

    #[test]
    fn into_matches_allocating_including_naive_base_cases() {
        let mut scratch = NttScratch::new();
        for radices in [vec![8usize, 8], vec![64, 16], vec![3, 5], vec![8, 8, 8]] {
            let plan = MixedRadixPlan::new(&radices).unwrap();
            let input = ramp(plan.len());
            let expected = plan.forward(&input);
            let mut data = input.clone();
            for _ in 0..2 {
                plan.forward_into(&mut data, &mut scratch);
                assert_eq!(data, expected, "radices = {radices:?}");
                plan.inverse_into(&mut data, &mut scratch);
                assert_eq!(data, input, "radices = {radices:?}");
            }
        }
    }

    #[test]
    fn paper_plan_shape() {
        let plan = MixedRadixPlan::paper_64k();
        assert_eq!(plan.len(), 65_536);
        assert_eq!(plan.radices(), &[64, 64, 16]);
        assert_eq!(plan.omega(), he_field::roots::omega_64k());
    }

    #[test]
    fn stage_order_is_observable() {
        // [64,16] and [16,64] are different factorizations of 1024 that must
        // agree on the result (reference plans, so the recursion itself is
        // exercised rather than two copies of the same engine).
        let a = MixedRadixPlan::reference(&[64, 16]).unwrap();
        let b = MixedRadixPlan::reference(&[16, 64]).unwrap();
        let input = ramp(1024);
        assert_eq!(a.forward(&input), b.forward(&input));
    }

    #[test]
    fn engine_delegation_matches_reference_bit_for_bit() {
        for radices in [vec![8usize, 8], vec![64, 16], vec![32, 16, 8]] {
            let fast = MixedRadixPlan::new(&radices).unwrap();
            let slow = MixedRadixPlan::reference(&radices).unwrap();
            let input = ramp(fast.len());
            assert_eq!(
                fast.forward(&input),
                slow.forward(&input),
                "radices = {radices:?}"
            );
            assert_eq!(
                fast.inverse(&input),
                slow.inverse(&input),
                "radices = {radices:?}"
            );
        }
        // Non-power-of-two plans have no engine to delegate to and still
        // agree with themselves through the public constructor.
        let odd = MixedRadixPlan::new(&[3, 5]).unwrap();
        let odd_ref = MixedRadixPlan::reference(&[3, 5]).unwrap();
        let input = ramp(15);
        assert_eq!(odd.forward(&input), odd_ref.forward(&input));
    }
}
