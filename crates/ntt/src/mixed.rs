//! General mixed-radix Cooley–Tukey decomposition (paper Eq. 1).
//!
//! For `N = R·M` and index split `n = M·d + m` (`d` the high digit), the
//! DFT factors as
//!
//! ```text
//! F[kA + R·kB] = Σ_m [ (Σ_d a[M·d + m]·ω_R^{d·kA}) · ω^{kA·m} ] · ω_M^{m·kB}
//! ```
//!
//! — an inner `R`-point DFT per residue `m`, a twiddle multiplication
//! (the accelerator's DSP-based modular multipliers), and a recursive
//! `M`-point transform. Choosing radices from `{8, 16, 32, 64}` makes every
//! inner DFT shift-only ([`crate::kernels`]); the paper's 64K plan is the
//! radix list `[64, 64, 16]` (see [`crate::Ntt64k`] for the specialized
//! version with precomputed tables).

use he_field::{roots, Fp};

use crate::error::NttError;
use crate::kernels::{self, Direction};
use crate::naive;

/// A planned mixed-radix NTT.
///
/// Input and output are in natural order.
///
/// ```
/// use he_field::Fp;
/// use he_ntt::MixedRadixPlan;
///
/// // A 4096-point transform as radix-64 × radix-64.
/// let plan = MixedRadixPlan::new(&[64, 64])?;
/// let input: Vec<Fp> = (0..4096).map(Fp::new).collect();
/// let freq = plan.forward(&input);
/// assert_eq!(plan.inverse(&freq), input);
/// # Ok::<(), he_ntt::NttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MixedRadixPlan {
    n: usize,
    radices: Vec<usize>,
    omega: Fp,
    /// `omega^e` for `e` in `[0, n)`.
    forward_table: Vec<Fp>,
    n_inv: Fp,
}

impl MixedRadixPlan {
    /// Plans a transform of length `Π radices` with the canonical root.
    ///
    /// Radices are listed outermost-first: `radices[0]` is the first
    /// computation stage (the paper's stage operating on the
    /// highest-stride digit).
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] if the radix list is empty, a
    /// radix is `< 2`, or the product does not divide `p − 1`.
    pub fn new(radices: &[usize]) -> Result<MixedRadixPlan, NttError> {
        if radices.is_empty() {
            return Err(NttError::UnsupportedSize {
                n: 0,
                reason: "at least one radix is required",
            });
        }
        if let Some(&r) = radices.iter().find(|&&r| r < 2) {
            return Err(NttError::UnsupportedSize {
                n: r,
                reason: "radices must be at least 2",
            });
        }
        let n: usize = radices.iter().product();
        let omega = roots::root_of_unity(n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "transform length must divide p-1",
        })?;
        let forward_table = roots::power_table(omega, n);
        let n_inv = Fp::new(n as u64).inverse().expect("n < p");
        Ok(MixedRadixPlan {
            n,
            radices: radices.to_vec(),
            omega,
            forward_table,
            n_inv,
        })
    }

    /// The paper's 64K-point plan: radix-64, radix-64, radix-16.
    pub fn paper_64k() -> MixedRadixPlan {
        MixedRadixPlan::new(&[64, 64, 16]).expect("64·64·16 divides p-1")
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never; provided for convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The radix list, outermost stage first.
    pub fn radices(&self) -> &[usize] {
        &self.radices
    }

    /// The primitive root used by the plan.
    pub fn omega(&self) -> Fp {
        self.omega
    }

    /// Forward transform.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        assert_eq!(input.len(), self.n, "input length must equal plan length");
        self.transform_rec(input, 1, &self.radices, Direction::Forward)
    }

    /// Inverse transform including the `1/n` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        assert_eq!(input.len(), self.n, "input length must equal plan length");
        let mut out = self.transform_rec(input, 1, &self.radices, Direction::Inverse);
        for x in out.iter_mut() {
            *x *= self.n_inv;
        }
        out
    }

    /// Looks up `ω^{±(stride·e)}` from the precomputed table.
    #[inline]
    fn tw(&self, stride: usize, e: usize, direction: Direction) -> Fp {
        // stride ≤ n and e % n < n, so the product fits 64-bit usize for all
        // plannable sizes (n ≤ 2^26).
        let idx = (stride * (e % self.n)) % self.n;
        match direction {
            Direction::Forward => self.forward_table[idx],
            Direction::Inverse => self.forward_table[(self.n - idx) % self.n],
        }
    }

    /// Recursive Cooley–Tukey step. `stride` expresses the current level's
    /// root as `ω_level = ω^stride`.
    fn transform_rec(
        &self,
        input: &[Fp],
        stride: usize,
        radices: &[usize],
        direction: Direction,
    ) -> Vec<Fp> {
        let len = input.len();
        if radices.len() == 1 {
            return self.base_dft(input, stride, direction);
        }
        let r = radices[0];
        let m_len = len / r;
        debug_assert_eq!(m_len * r, len);

        // Inner R-point DFTs over the high digit, one per residue m.
        // g[kA·m_len + m] = Σ_d input[M·d + m]·ω_R^{d·kA}
        let mut g = vec![Fp::ZERO; len];
        let mut column = vec![Fp::ZERO; r];
        for m in 0..m_len {
            for (d, c) in column.iter_mut().enumerate() {
                *c = input[m_len * d + m];
            }
            let sub = self.base_dft(&column, stride * m_len, direction);
            for (ka, &v) in sub.iter().enumerate() {
                g[ka * m_len + m] = v;
            }
        }

        // Twiddle + recurse on each row.
        let mut out = vec![Fp::ZERO; len];
        for ka in 0..r {
            let row = &mut g[ka * m_len..(ka + 1) * m_len];
            if ka > 0 {
                for (m, v) in row.iter_mut().enumerate() {
                    *v *= self.tw(stride, ka * m, direction);
                }
            }
            let sub = self.transform_rec(row, stride * r, &radices[1..], direction);
            for (kb, &v) in sub.iter().enumerate() {
                out[ka + r * kb] = v;
            }
        }
        out
    }

    /// Base-case DFT with root `ω^stride`; uses the shift-only kernel when
    /// the root matches the canonical power-of-two root.
    fn base_dft(&self, input: &[Fp], stride: usize, direction: Direction) -> Vec<Fp> {
        let r = input.len();
        let omega_base = self.tw(stride, 1, Direction::Forward);
        if kernels::supports(r) {
            let canonical = roots::root_of_unity(r as u64).expect("r divides 192");
            if omega_base == canonical {
                return kernels::ntt_small(input, direction).expect("size checked");
            }
        }
        match direction {
            Direction::Forward => naive::dft(input, omega_base),
            Direction::Inverse => {
                naive::dft(input, omega_base.inverse().expect("root is nonzero"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Fp> {
        (0..n as u64).map(|i| Fp::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))).collect()
    }

    #[test]
    fn rejects_bad_plans() {
        assert!(MixedRadixPlan::new(&[]).is_err());
        assert!(MixedRadixPlan::new(&[1]).is_err());
        assert!(MixedRadixPlan::new(&[64, 0]).is_err());
        // 3·7 = 21 does not divide p−1? p−1 = 2^32·3·5·17·257·65537, so 21
        // does NOT divide (no factor 7).
        assert!(MixedRadixPlan::new(&[3, 7]).is_err());
    }

    #[test]
    fn single_stage_matches_kernel_sizes() {
        for r in [8usize, 16, 32, 64] {
            let plan = MixedRadixPlan::new(&[r]).unwrap();
            let input = ramp(r);
            assert_eq!(plan.forward(&input), naive::dft(&input, plan.omega()), "r = {r}");
        }
    }

    #[test]
    fn two_stage_matches_naive() {
        for radices in [[8usize, 8], [16, 8], [8, 16], [16, 16], [64, 16]] {
            let plan = MixedRadixPlan::new(&radices).unwrap();
            let input = ramp(plan.len());
            assert_eq!(
                plan.forward(&input),
                naive::dft(&input, plan.omega()),
                "radices = {radices:?}"
            );
        }
    }

    #[test]
    fn three_stage_roundtrip() {
        for radices in [[8usize, 8, 8], [16, 8, 8], [32, 16, 8]] {
            let plan = MixedRadixPlan::new(&radices).unwrap();
            let input = ramp(plan.len());
            assert_eq!(plan.inverse(&plan.forward(&input)), input, "radices = {radices:?}");
        }
    }

    #[test]
    fn non_power_of_two_radices_work() {
        // Radix 3 and 5 divide p−1; base case falls back to the naive DFT.
        let plan = MixedRadixPlan::new(&[3, 5]).unwrap();
        let input = ramp(15);
        assert_eq!(plan.forward(&input), naive::dft(&input, plan.omega()));
        assert_eq!(plan.inverse(&plan.forward(&input)), input);
    }

    #[test]
    fn paper_plan_shape() {
        let plan = MixedRadixPlan::paper_64k();
        assert_eq!(plan.len(), 65_536);
        assert_eq!(plan.radices(), &[64, 64, 16]);
        assert_eq!(plan.omega(), he_field::roots::omega_64k());
    }

    #[test]
    fn stage_order_is_observable() {
        // [64,16] and [16,64] are different factorizations of 1024 that must
        // agree on the result.
        let a = MixedRadixPlan::new(&[64, 16]).unwrap();
        let b = MixedRadixPlan::new(&[16, 64]).unwrap();
        let input = ramp(1024);
        assert_eq!(a.forward(&input), b.forward(&input));
    }
}
