//! Iterative radix-2 transform — the conventional approach the paper's
//! mixed-radix design is compared against.

use he_field::{roots, Fp};

use crate::error::NttError;

/// A planned radix-2 NTT of power-of-two length.
///
/// Input and output are in natural order (a bit-reversal permutation is
/// applied internally). This is the "binary recursive splitting" baseline
/// the paper departs from; the `ntt_radix` bench compares it against
/// [`crate::MixedRadixPlan`] and [`crate::Ntt64k`].
///
/// ```
/// use he_field::Fp;
/// use he_ntt::Radix2Plan;
///
/// let plan = Radix2Plan::new(8)?;
/// let data: Vec<Fp> = (0..8).map(Fp::new).collect();
/// let freq = plan.forward(&data);
/// assert_eq!(plan.inverse(&freq), data);
/// # Ok::<(), he_ntt::NttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    log_n: u32,
    omega: Fp,
    /// Twiddles in bit-reversed layer order: for each butterfly layer `s`
    /// (block size `2^{s+1}`), the `2^s` powers of `ω_{2^{s+1}}`.
    forward_twiddles: Vec<Vec<Fp>>,
    inverse_twiddles: Vec<Vec<Fp>>,
    n_inv: Fp,
}

impl Radix2Plan {
    /// Plans an `n`-point transform using the canonical root
    /// [`roots::root_of_unity`]`(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] if `n` is not a power of two
    /// between 2 and `2^32`.
    pub fn new(n: usize) -> Result<Radix2Plan, NttError> {
        let omega = roots::root_of_unity(n as u64).ok_or(NttError::UnsupportedSize {
            n,
            reason: "length must divide p-1",
        })?;
        Radix2Plan::with_omega(n, omega)
    }

    /// Plans an `n`-point transform with an explicit primitive `n`-th root.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::UnsupportedSize`] if `n` is not a power of two
    /// `≥ 2` or `omega` is not a primitive `n`-th root of unity.
    pub fn with_omega(n: usize, omega: Fp) -> Result<Radix2Plan, NttError> {
        if !n.is_power_of_two() || n < 2 {
            return Err(NttError::UnsupportedSize {
                n,
                reason: "radix-2 plans require a power-of-two length >= 2",
            });
        }
        if !roots::is_primitive_root(omega, n as u64) {
            return Err(NttError::UnsupportedSize {
                n,
                reason: "omega is not a primitive n-th root of unity",
            });
        }
        let log_n = n.trailing_zeros();
        let mut forward_twiddles = Vec::with_capacity(log_n as usize);
        let mut inverse_twiddles = Vec::with_capacity(log_n as usize);
        let omega_inv = omega.inverse().expect("root of unity is nonzero");
        for s in 0..log_n {
            let m = 1usize << (s + 1);
            let w_m = omega.pow((n / m) as u64);
            let w_m_inv = omega_inv.pow((n / m) as u64);
            forward_twiddles.push(roots::power_table(w_m, m / 2));
            inverse_twiddles.push(roots::power_table(w_m_inv, m / 2));
        }
        let n_inv = Fp::new(n as u64).inverse().expect("n < p");
        Ok(Radix2Plan {
            n,
            log_n,
            omega,
            forward_twiddles,
            inverse_twiddles,
            n_inv,
        })
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is empty (never: lengths are ≥ 2); provided to
    /// satisfy the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The primitive root the plan was built with.
    pub fn omega(&self) -> Fp {
        self.omega
    }

    /// Bytes held by the per-layer twiddle tables (forward and inverse).
    /// Computed once at construction and shared by every transform.
    pub fn table_bytes(&self) -> usize {
        self.forward_twiddles
            .iter()
            .chain(&self.inverse_twiddles)
            .map(|layer| std::mem::size_of_val(layer.as_slice()))
            .sum()
    }

    /// Forward transform (natural order in and out).
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn forward(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.forward_in_place(&mut data)
            .expect("length checked by caller");
        data
    }

    /// Inverse transform including the `1/n` scaling.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the plan length.
    pub fn inverse(&self, input: &[Fp]) -> Vec<Fp> {
        let mut data = input.to_vec();
        self.inverse_in_place(&mut data)
            .expect("length checked by caller");
        data
    }

    /// In-place forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::LengthMismatch`] on a length mismatch.
    pub fn forward_in_place(&self, data: &mut [Fp]) -> Result<(), NttError> {
        self.check_len(data.len())?;
        bit_reverse_permute(data);
        self.butterflies(data, &self.forward_twiddles);
        Ok(())
    }

    /// In-place inverse transform including the `1/n` scaling.
    ///
    /// # Errors
    ///
    /// Returns [`NttError::LengthMismatch`] on a length mismatch.
    pub fn inverse_in_place(&self, data: &mut [Fp]) -> Result<(), NttError> {
        self.check_len(data.len())?;
        bit_reverse_permute(data);
        self.butterflies(data, &self.inverse_twiddles);
        for x in data.iter_mut() {
            *x *= self.n_inv;
        }
        Ok(())
    }

    fn check_len(&self, len: usize) -> Result<(), NttError> {
        if len == self.n {
            Ok(())
        } else {
            Err(NttError::LengthMismatch {
                expected: self.n,
                actual: len,
            })
        }
    }

    fn butterflies(&self, data: &mut [Fp], twiddles: &[Vec<Fp>]) {
        for s in 0..self.log_n {
            let m = 1usize << (s + 1);
            let half = m / 2;
            let tw = &twiddles[s as usize];
            for block in data.chunks_exact_mut(m) {
                for j in 0..half {
                    let t = tw[j] * block[j + half];
                    let u = block[j];
                    block[j] = u + t;
                    block[j + half] = u - t;
                }
            }
        }
    }
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Fp]) {
    let n = data.len();
    let shift = (usize::BITS - n.trailing_zeros()) % usize::BITS;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            Radix2Plan::new(0),
            Err(NttError::UnsupportedSize { .. })
        ));
        assert!(matches!(
            Radix2Plan::new(1),
            Err(NttError::UnsupportedSize { .. })
        ));
        assert!(matches!(
            Radix2Plan::new(3),
            Err(NttError::UnsupportedSize { .. })
        ));
        assert!(matches!(
            Radix2Plan::new(48),
            Err(NttError::UnsupportedSize { .. })
        ));
    }

    #[test]
    fn rejects_non_primitive_omega() {
        // 4 has order 96, not 8.
        assert!(Radix2Plan::with_omega(8, Fp::new(4)).is_err());
    }

    #[test]
    fn length_mismatch_error() {
        let plan = Radix2Plan::new(8).unwrap();
        let mut data = vec![Fp::ZERO; 4];
        let err = plan.forward_in_place(&mut data).unwrap_err();
        assert_eq!(
            err,
            NttError::LengthMismatch {
                expected: 8,
                actual: 4
            }
        );
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn matches_naive_dft() {
        for log_n in 1..=10 {
            let n = 1usize << log_n;
            let plan = Radix2Plan::new(n).unwrap();
            let input: Vec<Fp> = (0..n as u64).map(|i| Fp::new(i * 37 + 11)).collect();
            assert_eq!(
                plan.forward(&input),
                naive::dft(&input, plan.omega()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn roundtrip_large() {
        let n = 1 << 14;
        let plan = Radix2Plan::new(n).unwrap();
        let input: Vec<Fp> = (0..n as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x9e3779b9)))
            .collect();
        assert_eq!(plan.inverse(&plan.forward(&input)), input);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = Radix2Plan::new(n).unwrap();
        let a: Vec<Fp> = (0..n as u64).map(|i| Fp::new(i + 1)).collect();
        let b: Vec<Fp> = (0..n as u64).map(|i| Fp::new(3 * i + 2)).collect();
        let sum: Vec<Fp> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = plan.forward(&a);
        let fb = plan.forward(&b);
        let fsum = plan.forward(&sum);
        for k in 0..n {
            assert_eq!(fsum[k], fa[k] + fb[k]);
        }
    }
}
