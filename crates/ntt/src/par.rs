//! Multi-core execution of independent sub-transforms.
//!
//! The paper's central observation is that each stage of the 64K
//! decomposition consists of 1024 (or 4096) *independent* sub-transforms —
//! that is what the four-PE hypercube exploits in hardware. This module is
//! the software counterpart: [`for_each_chunk`] runs a closure over every
//! fixed-size chunk of a buffer, spreading contiguous runs of chunks across
//! scoped OS threads.
//!
//! The implementation uses `std::thread::scope` rather than rayon because
//! this workspace builds without a crates.io registry; the chunked
//! fan-out/join pattern is the same work shape a rayon `par_chunks_mut`
//! would produce. With the `parallel` feature disabled (or
//! `HE_NTT_THREADS=1`) everything runs inline on the caller's thread, which
//! also keeps the hot path allocation-free — thread spawning is the one
//! part of the parallel path that touches the heap.

#[cfg(feature = "parallel")]
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the worker-thread count for this process (`0` clears the
/// override). Benchmarks use this to measure single-thread vs multi-core
/// scaling without re-launching; it takes precedence over the
/// `HE_NTT_THREADS` environment variable.
pub fn set_threads(n: usize) {
    #[cfg(feature = "parallel")]
    THREAD_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "parallel"))]
    let _ = n;
}

/// Upper bound on worker threads (including the caller's).
///
/// Precedence: [`set_threads`] override, then `HE_NTT_THREADS` (read once
/// per process — the lookup allocates, and this runs on the
/// allocation-free hot path), then the machine's available parallelism.
/// Always at least 1. With the `parallel` feature disabled this is
/// constantly 1.
pub fn thread_count() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let forced = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
        if forced > 0 {
            return forced;
        }
        static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("HE_NTT_THREADS") {
            Ok(v) => v.parse::<usize>().map(|n| n.max(1)).unwrap_or(1),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        })
    }
}

/// Minimum number of chunks per worker before fan-out is worth the spawn
/// cost; below this everything runs inline.
const MIN_CHUNKS_PER_THREAD: usize = 8;

/// Applies `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of
/// `data`, in parallel when the workload is large enough.
///
/// `data.len()` must be a multiple of `chunk_len`. Chunks are disjoint
/// `&mut` sub-slices, so the closure may freely write; reads of shared
/// inputs are captured by `&` reference.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `chunk_len`, and propagates
/// panics from `f`.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        data.len() % chunk_len,
        0,
        "buffer length {} is not a multiple of the chunk length {}",
        data.len(),
        chunk_len
    );
    let chunks = data.len() / chunk_len;
    let workers = thread_count()
        .min(chunks / MIN_CHUNKS_PER_THREAD.max(1))
        .max(1);
    if workers <= 1 {
        for (i, chunk) in data.chunks_exact_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    // Split the buffer into `workers` contiguous runs of whole chunks.
    // The caller's thread counts as a worker: it takes the final run
    // itself, so `workers` runs need only `workers - 1` spawns.
    let per = chunks.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        let f = &f;
        while rest.len() > per * chunk_len {
            let (head, tail) = rest.split_at_mut(per * chunk_len);
            let base = start;
            scope.spawn(move || {
                for (i, chunk) in head.chunks_exact_mut(chunk_len).enumerate() {
                    f(base + i, chunk);
                }
            });
            start += per;
            rest = tail;
        }
        for (i, chunk) in rest.chunks_exact_mut(chunk_len).enumerate() {
            f(start + i, chunk);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut data = vec![0u64; 64 * 100];
        for_each_chunk(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        for (i, chunk) in data.chunks_exact(64).enumerate() {
            assert!(chunk.iter().all(|&x| x == 1 + i as u64), "chunk {i}");
        }
    }

    #[test]
    fn forced_fan_out_covers_every_chunk_exactly_once() {
        // 1-core CI hosts never take the spawning branch by default;
        // force it. (Results are scheduling-independent, so the global
        // override racing other tests is harmless.)
        set_threads(4);
        let mut data = vec![0u64; 16 * 64];
        for_each_chunk(&mut data, 16, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        set_threads(0);
        for (i, chunk) in data.chunks_exact(16).enumerate() {
            assert!(chunk.iter().all(|&x| x == 1 + i as u64), "chunk {i}");
        }
    }

    #[test]
    fn small_workloads_run_inline() {
        let mut data = vec![0u8; 12];
        for_each_chunk(&mut data, 4, |i, chunk| chunk.fill(i as u8 + 1));
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_chunks() {
        let mut data = vec![0u8; 10];
        for_each_chunk(&mut data, 4, |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
