//! Multi-core execution of independent sub-transforms.
//!
//! The paper's central observation is that each stage of the 64K
//! decomposition consists of 1024 (or 4096) *independent* sub-transforms —
//! that is what the four-PE hypercube exploits in hardware. This module is
//! the software counterpart: [`for_each_chunk`] runs a closure over every
//! fixed-size chunk of a buffer, spreading contiguous runs of chunks across
//! scoped OS threads.
//!
//! The implementation uses `std::thread::scope` rather than rayon because
//! this workspace builds without a crates.io registry; the chunked
//! fan-out/join pattern is the same work shape a rayon `par_chunks_mut`
//! would produce. With the `parallel` feature disabled (or
//! `HE_NTT_THREADS=1`) everything runs inline on the caller's thread, which
//! also keeps the hot path allocation-free — thread spawning is the one
//! part of the parallel path that touches the heap.

#[cfg(feature = "parallel")]
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Overrides the worker-thread count for this process (`0` clears the
/// override). Benchmarks use this to measure single-thread vs multi-core
/// scaling without re-launching; it takes precedence over the
/// `HE_NTT_THREADS` environment variable.
pub fn set_threads(n: usize) {
    #[cfg(feature = "parallel")]
    THREAD_OVERRIDE.store(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "parallel"))]
    let _ = n;
}

#[cfg(feature = "parallel")]
thread_local! {
    /// Per-thread fan-out cap, set by [`with_thread_budget`].
    static LOCAL_BUDGET: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Runs `f` with **this thread's** transform fan-out capped at `n` worker
/// threads (`0` clears the cap; the cap is restored on exit, including on
/// panic).
///
/// Batch schedulers use this to hand each product shard a slice of the
/// machine: without it, `W` shard workers each re-claim the full global
/// [`thread_count`] inside every transform stage, oversubscribing the host
/// with up to `W × T` live threads. The cap is thread-local, so concurrent
/// shards compose without racing the global [`set_threads`] override.
pub fn with_thread_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "parallel")]
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LOCAL_BUDGET.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(LOCAL_BUDGET.with(|c| c.replace(n)));
        f()
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = n;
        f()
    }
}

/// Upper bound on worker threads (including the caller's).
///
/// Precedence: the calling thread's [`with_thread_budget`] cap, then the
/// [`set_threads`] override, then `HE_NTT_THREADS` (read once per process —
/// the lookup allocates, and this runs on the allocation-free hot path),
/// then the machine's available parallelism. Always at least 1. With the
/// `parallel` feature disabled this is constantly 1.
pub fn thread_count() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let budget = LOCAL_BUDGET.with(|c| c.get());
        if budget > 0 {
            return budget;
        }
        let forced = THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed);
        if forced > 0 {
            return forced;
        }
        static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("HE_NTT_THREADS") {
            Ok(v) => v.parse::<usize>().map(|n| n.max(1)).unwrap_or(1),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        })
    }
}

/// Runs `f(index, &items[index], &mut out[index])` for every item,
/// sharded across up to `workers` scoped threads, writing results in
/// order into caller-owned slots.
///
/// This is the product-level counterpart of [`for_each_chunk`]: batch
/// schedulers (the SSA multiplier, the evaluation engine) split a job
/// slice into contiguous shards, and each shard runs under a
/// [`with_thread_budget`] cap so the shards divide [`thread_count`]
/// fairly among themselves (shards with a larger share take the
/// remainder; every shard keeps at least one thread, so a `workers`
/// larger than `thread_count` oversubscribes by design — the caller
/// asked for that many concurrent shards) instead of each re-claiming
/// every core inside its transforms. With one worker, one item, or a
/// [`thread_count`] of 1 (a single-core host, `HE_NTT_THREADS=1`, or a
/// caller budget of 1), everything runs inline on the caller's thread —
/// spawning shards that a 1-wide machine must serialize anyway would be
/// pure overhead on the hot path.
///
/// # Errors
///
/// Returns the error of the lowest-index failing item, deterministically
/// regardless of scheduling. On error the contents of `out` are
/// unspecified (successful shards may have written their slots).
///
/// # Panics
///
/// Panics if `items.len() != out.len()`, and propagates panics from `f`.
pub fn run_sharded_into<J, O, E, F>(
    items: &[J],
    out: &mut [O],
    workers: usize,
    f: F,
) -> Result<(), (usize, E)>
where
    J: Sync,
    O: Send,
    E: Send,
    F: Fn(usize, &J, &mut O) -> Result<(), E> + Sync,
{
    assert_eq!(
        items.len(),
        out.len(),
        "one result slot per item ({} items, {} slots)",
        items.len(),
        out.len()
    );
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 || thread_count() <= 1 {
        for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
            f(i, item, slot).map_err(|e| (i, e))?;
        }
        return Ok(());
    }
    let per = items.len().div_ceil(workers);
    // Rounding in `per` can leave fewer actual shards than nominal
    // workers; budget the threads over the shards that really spawn.
    let shards = items.len().div_ceil(per);
    let total = thread_count();
    let base = (total / shards).max(1);
    let extra = if total > shards { total % shards } else { 0 };
    // Lowest failing index seen so far, shared so sibling shards stop
    // burning full-cost products on items the error already outranks
    // (items *below* it must still run — one of them may fail lower).
    let failed = std::sync::atomic::AtomicUsize::new(usize::MAX);
    let first_error = std::thread::scope(|scope| {
        let f = &f;
        let failed = &failed;
        let handles: Vec<_> = items
            .chunks(per)
            .zip(out.chunks_mut(per))
            .enumerate()
            .map(|(shard, (shard_items, shard_out))| {
                let budget = base + usize::from(shard < extra);
                scope.spawn(move || {
                    with_thread_budget(budget, || {
                        for (offset, (item, slot)) in
                            shard_items.iter().zip(shard_out.iter_mut()).enumerate()
                        {
                            let index = shard * per + offset;
                            // In-shard indices only grow, so once the
                            // known failure outranks us the rest of the
                            // shard is moot.
                            if index > failed.load(std::sync::atomic::Ordering::Relaxed) {
                                break;
                            }
                            if let Err(e) = f(index, item, slot) {
                                failed.fetch_min(index, std::sync::atomic::Ordering::Relaxed);
                                return Err((index, e));
                            }
                        }
                        Ok(())
                    })
                })
            })
            .collect();
        let mut first: Option<(usize, E)> = None;
        for handle in handles {
            // Re-raise worker panics with their original payload so the
            // real message/location survives (a plain expect() would
            // bury it under a generic string).
            let shard_result = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            if let Err((index, error)) = shard_result {
                if first.as_ref().is_none_or(|(best, _)| index < *best) {
                    first = Some((index, error));
                }
            }
        }
        first
    });
    match first_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Minimum number of chunks per worker before fan-out is worth the spawn
/// cost; below this everything runs inline.
const MIN_CHUNKS_PER_THREAD: usize = 8;

/// Applies `f(chunk_index, chunk)` to every `chunk_len`-sized chunk of
/// `data`, in parallel when the workload is large enough.
///
/// `data.len()` must be a multiple of `chunk_len`. Chunks are disjoint
/// `&mut` sub-slices, so the closure may freely write; reads of shared
/// inputs are captured by `&` reference.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `chunk_len`, and propagates
/// panics from `f`.
pub fn for_each_chunk<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        data.len() % chunk_len,
        0,
        "buffer length {} is not a multiple of the chunk length {}",
        data.len(),
        chunk_len
    );
    let chunks = data.len() / chunk_len;
    let workers = thread_count()
        .min(chunks / MIN_CHUNKS_PER_THREAD.max(1))
        .max(1);
    if workers <= 1 {
        for (i, chunk) in data.chunks_exact_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }

    // Split the buffer into `workers` contiguous runs of whole chunks.
    // The caller's thread counts as a worker: it takes the final run
    // itself, so `workers` runs need only `workers - 1` spawns.
    let per = chunks.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut start = 0usize;
        let f = &f;
        while rest.len() > per * chunk_len {
            let (head, tail) = rest.split_at_mut(per * chunk_len);
            let base = start;
            scope.spawn(move || {
                for (i, chunk) in head.chunks_exact_mut(chunk_len).enumerate() {
                    f(base + i, chunk);
                }
            });
            start += per;
            rest = tail;
        }
        for (i, chunk) in rest.chunks_exact_mut(chunk_len).enumerate() {
            f(start + i, chunk);
        }
    });
}

/// Acquires `mutex`, recovering from poisoning.
///
/// Every shared mutex in this workspace guards plain data (scratch stacks,
/// stats, pin registries) whose invariants hold between statements, so a
/// panic in one holder never leaves the value half-updated in a way the
/// next holder cannot use. Propagating the poison instead would cascade
/// one worker's panic into unrelated client threads — the serving fleet
/// explicitly survives a dying card (PR 6), and a poisoned-on-panic
/// `Mutex` must not undo that. This is the one blessed way to take such a
/// lock; `he-lint` flags bare `lock().unwrap()` on supervisor paths.
pub fn lock_or_recover<T: ?Sized>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_or_recover_survives_a_poisoned_mutex() {
        let mutex = std::sync::Mutex::new(7u64);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = mutex.lock().expect("not yet poisoned");
            panic!("poison the lock");
        }));
        assert!(mutex.is_poisoned());
        let mut guard = lock_or_recover(&mutex);
        assert_eq!(*guard, 7, "the poisoned value is still usable");
        *guard = 8;
        drop(guard);
        assert_eq!(*lock_or_recover(&mutex), 8);
    }

    #[test]
    fn covers_every_chunk_exactly_once() {
        let mut data = vec![0u64; 64 * 100];
        for_each_chunk(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        for (i, chunk) in data.chunks_exact(64).enumerate() {
            assert!(chunk.iter().all(|&x| x == 1 + i as u64), "chunk {i}");
        }
    }

    #[test]
    fn forced_fan_out_covers_every_chunk_exactly_once() {
        // 1-core CI hosts never take the spawning branch by default;
        // force it. (Results are scheduling-independent, so the global
        // override racing other tests is harmless.)
        set_threads(4);
        let mut data = vec![0u64; 16 * 64];
        for_each_chunk(&mut data, 16, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u64;
            }
        });
        set_threads(0);
        for (i, chunk) in data.chunks_exact(16).enumerate() {
            assert!(chunk.iter().all(|&x| x == 1 + i as u64), "chunk {i}");
        }
    }

    #[test]
    fn small_workloads_run_inline() {
        let mut data = vec![0u8; 12];
        for_each_chunk(&mut data, 4, |i, chunk| chunk.fill(i as u8 + 1));
        assert_eq!(data, [1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_chunks() {
        let mut data = vec![0u8; 10];
        for_each_chunk(&mut data, 4, |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn local_budget_caps_and_restores() {
        // Runs on a dedicated thread and touches only the thread-local
        // budget, so it cannot race other tests' set_threads calls.
        std::thread::spawn(|| {
            // A cap value neither set_threads callers nor
            // available_parallelism can ever produce, so every assertion
            // below is immune to concurrent set_threads calls.
            let cap = 1usize << 20;
            let inner = with_thread_budget(cap, || {
                // Nested budgets stack; the innermost wins on this thread.
                assert_eq!(with_thread_budget(1, thread_count), 1);
                // The cap is per-thread: a freshly spawned thread is
                // uncapped.
                let other = std::thread::spawn(thread_count).join().unwrap();
                assert_ne!(other, cap);
                thread_count()
            });
            assert_eq!(inner, cap);
            // The cap is gone after the scope.
            assert_ne!(thread_count(), cap);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn run_sharded_covers_every_item_in_order() {
        let items: Vec<u64> = (0..37).collect();
        let mut out = vec![0u64; items.len()];
        let result: Result<(), (usize, ())> =
            run_sharded_into(&items, &mut out, 4, |i, item, slot| {
                *slot = item * 2 + i as u64;
                Ok(())
            });
        result.unwrap();
        for (i, (item, slot)) in items.iter().zip(&out).enumerate() {
            assert_eq!(*slot, item * 2 + i as u64, "item {i}");
        }
    }

    #[test]
    fn run_sharded_reports_the_lowest_index_error() {
        let items: Vec<u64> = (0..16).collect();
        let mut out = vec![0u64; items.len()];
        let err = run_sharded_into(&items, &mut out, 4, |i, item, _| {
            if item % 5 == 3 {
                Err(i)
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, (3, 3), "lowest failing item is 3");
    }

    #[test]
    fn run_sharded_runs_inline_on_a_single_thread_host() {
        // Uses the thread-local budget (not the racy global override) to
        // pin thread_count() to 1, then proves no shard threads spawn:
        // every closure call lands on the calling thread.
        let caller = std::thread::current().id();
        let items: Vec<u64> = (0..32).collect();
        let mut out = vec![0u64; items.len()];
        with_thread_budget(1, || {
            run_sharded_into(&items, &mut out, 8, |i, item, slot| {
                assert_eq!(
                    std::thread::current().id(),
                    caller,
                    "item {i} must run inline when thread_count() == 1"
                );
                *slot = item + 1;
                Ok::<(), ()>(())
            })
        })
        .unwrap();
        for (item, slot) in items.iter().zip(&out) {
            assert_eq!(*slot, item + 1);
        }
    }

    #[test]
    fn run_sharded_single_worker_runs_inline() {
        let items = [1u64, 2, 3];
        let mut out = vec![0u64; 3];
        run_sharded_into(&items, &mut out, 1, |_, item, slot| {
            *slot = *item;
            Ok::<(), ()>(())
        })
        .unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "one result slot per item")]
    fn run_sharded_rejects_mismatched_slots() {
        let items = [1u64];
        let mut out: Vec<u64> = Vec::new();
        let _ = run_sharded_into(&items, &mut out, 1, |_, _, _| Ok::<(), ()>(()));
    }

    #[test]
    fn budgeted_fan_out_is_correct() {
        let mut data = vec![0u64; 64 * 64];
        with_thread_budget(1, || {
            for_each_chunk(&mut data, 64, |i, chunk| {
                for x in chunk.iter_mut() {
                    *x += 1 + i as u64;
                }
            });
        });
        for (i, chunk) in data.chunks_exact(64).enumerate() {
            assert!(chunk.iter().all(|&x| x == 1 + i as u64), "chunk {i}");
        }
    }
}
