//! Number-theoretic transforms over the Solinas prime `p = 2^64 − 2^32 + 1`.
//!
//! This crate implements the transform layer of the DATE 2016 accelerator
//! (Section III of the paper):
//!
//! * [`naive`] — the `O(n²)` reference DFT used as ground truth in tests;
//! * [`Radix2Plan`] — the conventional iterative radix-2 transform the paper
//!   *avoids* ("instead of the more common binary recursive splitting
//!   approach relying on a radix-2 transform"); kept as the software
//!   baseline for the `ntt_radix` ablation bench;
//! * [`kernels`] — shift-only transforms of 8/16/32/64 points: in this
//!   field the `n`-th root of unity for `n | 192` is a power of two, so
//!   every twiddle inside these blocks is a shift (paper Eq. 3);
//! * [`MixedRadixPlan`] — the general Cooley–Tukey decomposition of paper
//!   Eq. 1 for any size that factors into 8/16/32/64;
//! * [`Ntt64k`] — the paper's exact three-stage 64K-point decomposition
//!   (Eq. 2: radix-64, radix-64, radix-16) with precomputed inter-stage
//!   twiddle tables, plus its inverse;
//! * [`SixStepPlan`] — Eq. 1 applied once with explicit transposes (the
//!   "four-step/six-step" algorithm), the shared-memory counterpoint to
//!   the paper's distributed schedule;
//! * [`convolution`] — cyclic convolution, the operation Schönhage–Strassen
//!   multiplication reduces to;
//! * [`negacyclic`] — ψ-twisted transforms for products in
//!   `Z_p[X]/(X^n + 1)`, the RLWE workloads Section III says "may thus be
//!   implemented on top of the accelerator".
//!
//! All transforms take and produce **natural-order** coefficient vectors, so
//! they are interchangeable and mutually checkable.
//!
//! # Example
//!
//! ```
//! use he_field::Fp;
//! use he_ntt::{Ntt64k, naive};
//!
//! let plan = Ntt64k::new();
//! let mut data = vec![Fp::ZERO; 65_536];
//! data[0] = Fp::new(3);
//! data[1] = Fp::new(5);
//! let freq = plan.forward(&data);
//! let back = plan.inverse(&freq);
//! assert_eq!(back, data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convolution;
mod error;
pub mod kernels;
mod mixed;
pub mod naive;
pub mod negacyclic;
pub mod plan;
mod plan64k;
mod radix2;
mod sixstep;

pub use error::NttError;
pub use mixed::MixedRadixPlan;
pub use negacyclic::NegacyclicPlan;
pub use plan::Transform;
pub use plan64k::{Ntt64k, N64K};
pub use radix2::Radix2Plan;
pub use sixstep::SixStepPlan;
