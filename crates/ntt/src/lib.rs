//! Number-theoretic transforms over the Solinas prime `p = 2^64 − 2^32 + 1`.
//!
//! This crate implements the transform layer of the DATE 2016 accelerator
//! (Section III of the paper):
//!
//! * [`naive`] — the `O(n²)` reference DFT used as ground truth in tests;
//! * [`Radix2Plan`] — the conventional iterative radix-2 transform the paper
//!   *avoids* ("instead of the more common binary recursive splitting
//!   approach relying on a radix-2 transform"); kept as the software
//!   baseline for the `ntt_radix` ablation bench;
//! * [`radix2k`] / [`Radix2kPlan`] — **the production engine**: a
//!   radix-2^k stage compiler that groups up to [`radix2k::MAX_DEG`]
//!   butterfly layers into one data pass through an in-register,
//!   shift-only micro network, with per-plan twiddle tables built once at
//!   construction (a 64K transform is 4 memory passes instead of 17);
//! * [`kernels`] — shift-only transforms of 8/16/32/64 points: in this
//!   field the `n`-th root of unity for `n | 192` is a power of two, so
//!   every twiddle inside these blocks is a shift (paper Eq. 3);
//! * [`MixedRadixPlan`] — the general Cooley–Tukey decomposition of paper
//!   Eq. 1 for any size that factors into 8/16/32/64; power-of-two plans
//!   execute on the radix-2^k engine, and
//!   [`MixedRadixPlan::reference`] keeps the pure recursion for
//!   cross-validation;
//! * [`Ntt64k`] — the paper's 64K-point decomposition (Eq. 2: radix-64,
//!   radix-64, radix-16), executed by the radix-2^k engine while
//!   preserving the paper's operation census for the hardware models;
//! * [`SixStepPlan`] — Eq. 1 applied once with explicit transposes (the
//!   "four-step/six-step" algorithm), the shared-memory counterpoint to
//!   the paper's distributed schedule;
//! * [`convolution`] — cyclic convolution, the operation Schönhage–Strassen
//!   multiplication reduces to;
//! * [`negacyclic`] — ψ-twisted transforms for products in
//!   `Z_p[X]/(X^n + 1)`, the RLWE workloads Section III says "may thus be
//!   implemented on top of the accelerator".
//!
//! All transforms take and produce **natural-order** coefficient vectors, so
//! they are interchangeable and mutually checkable.
//!
//! # In-place, scratch-reusing APIs
//!
//! Every plan offers two API shapes:
//!
//! * **allocating** — `forward(&[Fp]) -> Vec<Fp>` / `inverse`, convenient
//!   for one-off transforms and tests;
//! * **in-place** — `forward_into(&mut [Fp], &mut NttScratch)` /
//!   `inverse_into`, which transform the buffer where it lives and stage
//!   intermediates in a reusable [`NttScratch`] pool. After one warm-up
//!   call the scratch serves every subsequent transform with **zero heap
//!   allocations**, mirroring the accelerator's fixed on-chip buffers.
//!   The allocating methods are thin wrappers over the in-place ones.
//!
//! The [`Transform`] trait exposes both shapes, so `Box<dyn Transform>`
//! callers (e.g. the SSA multiplier) get the allocation-free path too.
//!
//! # Multi-core execution
//!
//! The paper's decomposition exposes 1024 (stages 1–2) and 4096 (stage 3)
//! *independent* sub-transforms per stage — the parallelism its four-PE
//! hypercube exploits in hardware. With the `parallel` feature (default
//! on), [`Ntt64k`] and [`SixStepPlan`] fan those sub-transforms out over
//! the available cores via scoped threads ([`par`]); set `HE_NTT_THREADS=1`
//! (or disable the feature) for strictly sequential execution. The fan-out
//! is a pure scheduling change: results are bit-identical either way.
//!
//! # Example
//!
//! ```
//! use he_field::Fp;
//! use he_ntt::{naive, Ntt64k, NttScratch};
//!
//! let plan = Ntt64k::new();
//! let mut data = vec![Fp::ZERO; 65_536];
//! data[0] = Fp::new(3);
//! data[1] = Fp::new(5);
//! let freq = plan.forward(&data); // allocating
//!
//! let mut scratch = NttScratch::new();
//! plan.forward_into(&mut data, &mut scratch); // in place
//! assert_eq!(data, freq);
//! plan.inverse_into(&mut data, &mut scratch); // scratch reused
//! assert_eq!(data[0], Fp::new(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convolution;
mod error;
pub mod kernels;
mod mixed;
pub mod naive;
pub mod negacyclic;
pub mod par;
pub mod plan;
mod plan64k;
mod radix2;
pub mod radix2k;
mod scratch;
mod sixstep;

pub use error::NttError;
pub use mixed::MixedRadixPlan;
pub use negacyclic::NegacyclicPlan;
pub use plan::Transform;
pub use plan64k::{Ntt64k, N64K};
pub use radix2::Radix2Plan;
pub use radix2k::Radix2kPlan;
pub use scratch::NttScratch;
pub use sixstep::SixStepPlan;
