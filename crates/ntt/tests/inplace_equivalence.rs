//! Property tests: the in-place/scratch APIs bit-match the allocating
//! APIs, for every plan type, across repeated calls on one reused scratch.
//!
//! The scratch pool hands back buffers with unspecified contents
//! (`take_any`), so reuse across calls — and across *plans*, which share
//! the pool in the SSA stack — is exactly where stale-data bugs would
//! hide. Every property here therefore runs each `_into` call twice on the
//! same scratch and compares both rounds.

use he_field::Fp;
use he_ntt::{
    MixedRadixPlan, NegacyclicPlan, NttScratch, Radix2Plan, Radix2kPlan, SixStepPlan, Transform,
};
use proptest::prelude::*;

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<Fp>> {
    proptest::collection::vec(any::<u64>().prop_map(Fp::new), n..=n)
}

/// Checks one plan's `forward_into`/`inverse_into` against
/// `forward`/`inverse` with a shared, reused scratch.
fn check_roundtrips<T: Transform>(plan: &T, input: &[Fp], scratch: &mut NttScratch) {
    let expected_f = plan.forward(input);
    let expected_b = plan.inverse(&expected_f);
    let mut data = input.to_vec();
    for round in 0..2 {
        plan.forward_into(&mut data, scratch);
        assert_eq!(data, expected_f, "forward round {round}");
        plan.inverse_into(&mut data, scratch);
        assert_eq!(data, expected_b, "inverse round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn radix2_into_matches(v in arb_vec(128)) {
        let plan = Radix2Plan::new(128).unwrap();
        check_roundtrips(&plan, &v, &mut NttScratch::new());
    }

    #[test]
    fn radix2k_into_matches(v in arb_vec(2048)) {
        // 2048 needs the uneven [6, 5] deg schedule; the scratch must
        // stay untouched (the engine is fully in-place).
        let plan = Radix2kPlan::new(2048).unwrap();
        let mut scratch = NttScratch::new();
        check_roundtrips(&plan, &v, &mut scratch);
        prop_assert_eq!(scratch.pooled(), 0);
    }

    #[test]
    fn mixed_radix_into_matches(v in arb_vec(1024)) {
        let plan = MixedRadixPlan::new(&[64, 16]).unwrap();
        check_roundtrips(&plan, &v, &mut NttScratch::new());
    }

    #[test]
    fn mixed_radix_non_pow2_into_matches(v in arb_vec(15)) {
        let plan = MixedRadixPlan::new(&[3, 5]).unwrap();
        check_roundtrips(&plan, &v, &mut NttScratch::new());
    }

    #[test]
    fn sixstep_into_matches(v in arb_vec(512)) {
        let plan = SixStepPlan::new(32, 16).unwrap();
        check_roundtrips(&plan, &v, &mut NttScratch::new());
    }

    #[test]
    fn negacyclic_into_matches(a in arb_vec(64), b in arb_vec(64)) {
        let plan = NegacyclicPlan::new(64).unwrap();
        let mut scratch = NttScratch::new();
        // forward/inverse in place.
        let expected_f = plan.forward(&a);
        let mut data = a.clone();
        plan.forward_into(&mut data);
        prop_assert_eq!(&data, &expected_f);
        plan.inverse_into(&mut data);
        prop_assert_eq!(&data, &a);
        // multiply_into with scratch reuse.
        let expected = plan.multiply(&a, &b);
        let mut out = vec![Fp::ZERO; 64];
        for _ in 0..2 {
            plan.multiply_into(&a, &b, &mut out, &mut scratch);
            prop_assert_eq!(&out, &expected);
        }
    }

    #[test]
    fn one_scratch_serves_many_plans(v in arb_vec(1024)) {
        // The SSA stack shares one pool across plan types; interleave them.
        let mut scratch = NttScratch::new();
        let mixed = MixedRadixPlan::new(&[64, 16]).unwrap();
        let six = SixStepPlan::new(32, 32).unwrap();
        let radix2 = Radix2Plan::new(1024).unwrap();
        for _ in 0..2 {
            check_roundtrips(&mixed, &v, &mut scratch);
            check_roundtrips(&six, &v, &mut scratch);
            check_roundtrips(&radix2, &v, &mut scratch);
        }
        // All three agree on the spectrum too (same canonical root).
        prop_assert_eq!(mixed.forward(&v), radix2.forward(&v));
        prop_assert_eq!(six.forward(&v), radix2.forward(&v));
    }
}

/// The 64K plan is too large for many proptest cases; cover it with a few
/// deterministic patterns plus one pseudorandom vector.
#[test]
fn ntt64k_into_matches_allocating() {
    use he_ntt::{Ntt64k, N64K};
    let plan = Ntt64k::new();
    let mut scratch = NttScratch::new();
    let mut patterns: Vec<Vec<Fp>> = Vec::new();
    let mut impulse = vec![Fp::ZERO; N64K];
    impulse[1] = Fp::new(7);
    patterns.push(impulse);
    patterns.push(
        (0..N64K as u64)
            .map(|i| Fp::new(i.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0xbeef))
            .collect(),
    );
    for v in patterns {
        check_roundtrips(&plan, &v, &mut scratch);
    }
}
