//! Property-based cross-checks between the transform implementations.

use he_field::{roots, Fp};
use he_ntt::kernels::{self, Direction};
use he_ntt::radix2k::{bit_reverse_permute, radix_stage};
use he_ntt::{naive, MixedRadixPlan, Radix2Plan, Radix2kPlan};
use proptest::prelude::*;

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<Fp>> {
    proptest::collection::vec(any::<u64>().prop_map(Fp::new), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix2_matches_naive(v in arb_vec(32)) {
        let plan = Radix2Plan::new(32).unwrap();
        prop_assert_eq!(plan.forward(&v), naive::dft(&v, plan.omega()));
    }

    #[test]
    fn radix2_roundtrip(v in arb_vec(128)) {
        let plan = Radix2Plan::new(128).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn kernels_match_naive_64(v in arb_vec(64)) {
        prop_assert_eq!(
            kernels::ntt_small(&v, Direction::Forward).unwrap(),
            naive::dft(&v, roots::OMEGA_64)
        );
    }

    #[test]
    fn kernels_match_naive_16(v in arb_vec(16)) {
        prop_assert_eq!(
            kernels::ntt_small(&v, Direction::Forward).unwrap(),
            naive::dft(&v, roots::OMEGA_16)
        );
    }

    #[test]
    fn mixed_radix_matches_radix2(v in arb_vec(512)) {
        // 512 = 8·64; radix-2 and mixed-radix share the canonical root chain.
        let mixed = MixedRadixPlan::new(&[8, 64]).unwrap();
        let radix2 = Radix2Plan::new(512).unwrap();
        prop_assert_eq!(mixed.omega(), radix2.omega());
        prop_assert_eq!(mixed.forward(&v), radix2.forward(&v));
    }

    #[test]
    fn mixed_radix_roundtrip_1024(v in arb_vec(1024)) {
        let plan = MixedRadixPlan::new(&[64, 16]).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn convolution_theorem_pow2(
        a in arb_vec(64),
        b in arb_vec(64)
    ) {
        prop_assert_eq!(
            he_ntt::convolution::cyclic_convolve_pow2(&a, &b).unwrap(),
            naive::cyclic_convolve(&a, &b)
        );
    }

    #[test]
    fn parseval_like_dc_term(v in arb_vec(64)) {
        // F[0] is the plain sum of the inputs for any correct DFT.
        let f = kernels::ntt_small(&v, Direction::Forward).unwrap();
        let sum: Fp = v.iter().copied().sum();
        prop_assert_eq!(f[0], sum);
    }

    #[test]
    fn negacyclic_matches_naive(a in arb_vec(32), b in arb_vec(32)) {
        let plan = he_ntt::NegacyclicPlan::new(32).unwrap();
        prop_assert_eq!(
            plan.multiply(&a, &b),
            he_ntt::negacyclic::naive_negacyclic(&a, &b)
        );
    }

    #[test]
    fn negacyclic_roundtrip(a in arb_vec(64)) {
        let plan = he_ntt::NegacyclicPlan::new(64).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&a)), a);
    }

    #[test]
    fn plan_trait_implementations_agree(a in arb_vec(64)) {
        use he_ntt::plan::{plan_for, Transform};
        let via_trait = plan_for(64).unwrap();
        let direct = Radix2Plan::new(64).unwrap();
        prop_assert_eq!(via_trait.forward(&a), Transform::forward(&direct, &a));
    }

    #[test]
    fn radix2k_matches_radix2_every_size(log_n in 1u32..=11, v in arb_vec(2048)) {
        // Sweeps every schedule shape up to 2048, including the
        // non-power-of-4 sizes that need mixed deg schedules
        // (128 → [4, 3], 2048 → [6, 5]); outputs must be bit-identical
        // to the radix-2 baseline in both directions.
        let n = 1usize << log_n;
        let v = &v[..n];
        let compiled = Radix2kPlan::new(n).unwrap();
        let baseline = Radix2Plan::new(n).unwrap();
        prop_assert_eq!(compiled.forward(v), baseline.forward(v));
        prop_assert_eq!(compiled.inverse(v), baseline.inverse(v));
    }

    #[test]
    fn radix2k_roundtrip(log_n in 1u32..=12, v in arb_vec(4096)) {
        let n = 1usize << log_n;
        let v = v[..n].to_vec();
        let plan = Radix2kPlan::new(n).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn radix_stage_chain_matches_radix2(v in arb_vec(256)) {
        // The public kernel entry point, chained with a deliberately
        // uneven deg split (2 + 3 + 3 layers), reproduces the radix-2
        // transform bit for bit.
        let omega = roots::root_of_unity(256).unwrap();
        let mut x = v.clone();
        bit_reverse_permute(&mut x);
        for (log_m, deg) in [(0, 2), (2, 3), (5, 3)] {
            radix_stage(&mut x, omega, log_m, deg).unwrap();
        }
        prop_assert_eq!(x, Radix2Plan::new(256).unwrap().forward(&v));
    }

    #[test]
    fn sixstep_on_radix2k_matches_radix2(v in arb_vec(1024), shape in 0usize..3) {
        // The six-step rows/columns run on radix-2^k sub-plans with
        // non-canonical roots (ω^{N2}, ω^{N1}); results must still match
        // the radix-2 baseline on the canonical root.
        let (n1, n2) = [(16, 64), (64, 16), (32, 32)][shape];
        let six = he_ntt::SixStepPlan::new(n1, n2).unwrap();
        let baseline = Radix2Plan::new(1024).unwrap();
        prop_assert_eq!(six.forward(&v), baseline.forward(&v));
        prop_assert_eq!(six.inverse(&six.forward(&v)), v);
    }

    #[test]
    fn mixed_delegation_matches_reference(v in arb_vec(512)) {
        // MixedRadixPlan::new executes on the radix-2^k engine for
        // power-of-two sizes; the pure Eq. 1 recursion must agree bit
        // for bit in both directions.
        let fast = MixedRadixPlan::new(&[8, 64]).unwrap();
        let slow = MixedRadixPlan::reference(&[8, 64]).unwrap();
        prop_assert_eq!(fast.forward(&v), slow.forward(&v));
        prop_assert_eq!(fast.inverse(&v), slow.inverse(&v));
    }

    #[test]
    fn negacyclic_on_radix2k_roundtrip_and_twist(a in arb_vec(128)) {
        // The ψ-twisted plan's cyclic core now runs on the radix-2^k
        // engine (root ψ², non-canonical); the twist identity must hold.
        let plan = he_ntt::NegacyclicPlan::new(128).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&a)), a);
    }

    #[test]
    fn transform_is_linear(a in arb_vec(64), b in arb_vec(64), c in any::<u64>().prop_map(Fp::new)) {
        let fa = kernels::ntt_small(&a, Direction::Forward).unwrap();
        let fb = kernels::ntt_small(&b, Direction::Forward).unwrap();
        let combo: Vec<Fp> = a.iter().zip(&b).map(|(&x, &y)| x * c + y).collect();
        let fcombo = kernels::ntt_small(&combo, Direction::Forward).unwrap();
        for k in 0..64 {
            prop_assert_eq!(fcombo[k], fa[k] * c + fb[k]);
        }
    }
}

/// The 64K plan agrees with the radix-2 transform built on the same root.
/// One deterministic case (a 64K proptest case would dominate runtime).
#[test]
fn ntt64k_matches_radix2_on_same_root() {
    use he_ntt::{Ntt64k, N64K};
    let plan = Ntt64k::new();
    let radix2 = Radix2Plan::with_omega(N64K, roots::omega_64k()).unwrap();
    let mut v = vec![Fp::ZERO; N64K];
    for (i, slot) in v.iter_mut().enumerate() {
        if i % 97 == 0 {
            *slot = Fp::new((i as u64).wrapping_mul(0xdead_beef));
        }
    }
    assert_eq!(plan.forward(&v), radix2.forward(&v));
    assert_eq!(plan.inverse(&plan.forward(&v)), v);
}
