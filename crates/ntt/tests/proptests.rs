//! Property-based cross-checks between the transform implementations.

use he_field::{roots, Fp};
use he_ntt::kernels::{self, Direction};
use he_ntt::{naive, MixedRadixPlan, Radix2Plan};
use proptest::prelude::*;

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<Fp>> {
    proptest::collection::vec(any::<u64>().prop_map(Fp::new), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix2_matches_naive(v in arb_vec(32)) {
        let plan = Radix2Plan::new(32).unwrap();
        prop_assert_eq!(plan.forward(&v), naive::dft(&v, plan.omega()));
    }

    #[test]
    fn radix2_roundtrip(v in arb_vec(128)) {
        let plan = Radix2Plan::new(128).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn kernels_match_naive_64(v in arb_vec(64)) {
        prop_assert_eq!(
            kernels::ntt_small(&v, Direction::Forward).unwrap(),
            naive::dft(&v, roots::OMEGA_64)
        );
    }

    #[test]
    fn kernels_match_naive_16(v in arb_vec(16)) {
        prop_assert_eq!(
            kernels::ntt_small(&v, Direction::Forward).unwrap(),
            naive::dft(&v, roots::OMEGA_16)
        );
    }

    #[test]
    fn mixed_radix_matches_radix2(v in arb_vec(512)) {
        // 512 = 8·64; radix-2 and mixed-radix share the canonical root chain.
        let mixed = MixedRadixPlan::new(&[8, 64]).unwrap();
        let radix2 = Radix2Plan::new(512).unwrap();
        prop_assert_eq!(mixed.omega(), radix2.omega());
        prop_assert_eq!(mixed.forward(&v), radix2.forward(&v));
    }

    #[test]
    fn mixed_radix_roundtrip_1024(v in arb_vec(1024)) {
        let plan = MixedRadixPlan::new(&[64, 16]).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&v)), v);
    }

    #[test]
    fn convolution_theorem_pow2(
        a in arb_vec(64),
        b in arb_vec(64)
    ) {
        prop_assert_eq!(
            he_ntt::convolution::cyclic_convolve_pow2(&a, &b).unwrap(),
            naive::cyclic_convolve(&a, &b)
        );
    }

    #[test]
    fn parseval_like_dc_term(v in arb_vec(64)) {
        // F[0] is the plain sum of the inputs for any correct DFT.
        let f = kernels::ntt_small(&v, Direction::Forward).unwrap();
        let sum: Fp = v.iter().copied().sum();
        prop_assert_eq!(f[0], sum);
    }

    #[test]
    fn negacyclic_matches_naive(a in arb_vec(32), b in arb_vec(32)) {
        let plan = he_ntt::NegacyclicPlan::new(32).unwrap();
        prop_assert_eq!(
            plan.multiply(&a, &b),
            he_ntt::negacyclic::naive_negacyclic(&a, &b)
        );
    }

    #[test]
    fn negacyclic_roundtrip(a in arb_vec(64)) {
        let plan = he_ntt::NegacyclicPlan::new(64).unwrap();
        prop_assert_eq!(plan.inverse(&plan.forward(&a)), a);
    }

    #[test]
    fn plan_trait_implementations_agree(a in arb_vec(64)) {
        use he_ntt::plan::{plan_for, Transform};
        let via_trait = plan_for(64).unwrap();
        let direct = Radix2Plan::new(64).unwrap();
        prop_assert_eq!(via_trait.forward(&a), Transform::forward(&direct, &a));
    }

    #[test]
    fn transform_is_linear(a in arb_vec(64), b in arb_vec(64), c in any::<u64>().prop_map(Fp::new)) {
        let fa = kernels::ntt_small(&a, Direction::Forward).unwrap();
        let fb = kernels::ntt_small(&b, Direction::Forward).unwrap();
        let combo: Vec<Fp> = a.iter().zip(&b).map(|(&x, &y)| x * c + y).collect();
        let fcombo = kernels::ntt_small(&combo, Direction::Forward).unwrap();
        for k in 0..64 {
            prop_assert_eq!(fcombo[k], fa[k] * c + fb[k]);
        }
    }
}

/// The 64K plan agrees with the radix-2 transform built on the same root.
/// One deterministic case (a 64K proptest case would dominate runtime).
#[test]
fn ntt64k_matches_radix2_on_same_root() {
    use he_ntt::{Ntt64k, N64K};
    let plan = Ntt64k::new();
    let radix2 = Radix2Plan::with_omega(N64K, roots::omega_64k()).unwrap();
    let mut v = vec![Fp::ZERO; N64K];
    for (i, slot) in v.iter_mut().enumerate() {
        if i % 97 == 0 {
            *slot = Fp::new((i as u64).wrapping_mul(0xdead_beef));
        }
    }
    assert_eq!(plan.forward(&v), radix2.forward(&v));
    assert_eq!(plan.inverse(&plan.forward(&v)), v);
}
