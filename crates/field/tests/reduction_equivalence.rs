//! Equivalence of the three reduction strategies on identical operands:
//! the Eq. 4 Solinas path (the hardware's), Montgomery (the generic
//! alternative of the §8 ablation), and plain `u128 %` (ground truth).

use he_field::mont::{redc, MontFp, MONTGOMERY_COST, SOLINAS_COST};
use he_field::{reduce, Fp, P};
use proptest::prelude::*;

proptest! {
    #[test]
    fn three_way_multiplication_agreement(a in any::<u64>(), b in any::<u64>()) {
        let fa = Fp::new(a);
        let fb = Fp::new(b);
        // Ground truth.
        let expected = ((fa.as_u64() as u128 * fb.as_u64() as u128) % P as u128) as u64;
        // Eq. 4 path (operator).
        prop_assert_eq!((fa * fb).as_u64(), expected);
        // Montgomery path.
        prop_assert_eq!((MontFp::from_fp(fa) * MontFp::from_fp(fb)).to_fp().as_u64(), expected);
    }

    #[test]
    fn redc_inverts_the_montgomery_shift(a in any::<u64>()) {
        // redc(x · 2^64) = x for canonical x.
        let x = Fp::new(a).as_u64();
        prop_assert_eq!(redc((x as u128) << 64), x % P);
    }

    #[test]
    fn montgomery_power_chain_matches_fp_pow(a in any::<u64>(), e in 0u64..512) {
        let base = Fp::new(a);
        let mut acc = MontFp::from_fp(Fp::ONE);
        let mbase = MontFp::from_fp(base);
        for _ in 0..e {
            acc = acc * mbase;
        }
        prop_assert_eq!(acc.to_fp(), base.pow(e));
    }

    #[test]
    fn eq4_coarse_result_is_always_close(x in any::<u128>()) {
        // The Normalize output needs at most two subtractions — the
        // hardware sizing assumption for the AddMod stage.
        let (coarse, corrections) = reduce::normalize_eq4(x);
        prop_assert!(corrections <= 1);
        prop_assert!(coarse < 3 * P as u128);
    }
}

#[test]
#[allow(clippy::assertions_on_constants)] // documents the hardware claim
fn cost_model_reflects_the_design_choice() {
    // The ablation's whole point: the Solinas prime removes multipliers
    // from the reduction path at the price of two more adders.
    assert_eq!(SOLINAS_COST.multipliers, 0);
    assert_eq!(MONTGOMERY_COST.multipliers, 2);
    assert!(SOLINAS_COST.adders > MONTGOMERY_COST.adders);
}
