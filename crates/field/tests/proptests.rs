//! Property-based tests for the field axioms and the hardware-path
//! equivalences (Eq. 4 reduction, shift twiddles, 192-bit end-around carry).

use he_field::{reduce, roots, Fp, P, U192};
use proptest::prelude::*;

fn arb_fp() -> impl Strategy<Value = Fp> {
    any::<u64>().prop_map(Fp::new)
}

fn arb_u192() -> impl Strategy<Value = U192> {
    any::<[u64; 3]>().prop_map(U192::from_limbs)
}

proptest! {
    #[test]
    fn add_commutative(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributive(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_is_add_neg(a in arb_fp(), b in arb_fp()) {
        prop_assert_eq!(a - b, a + (-b));
    }

    #[test]
    fn mul_matches_u128_naive(a in arb_fp(), b in arb_fp()) {
        let expected = ((a.as_u64() as u128 * b.as_u64() as u128) % P as u128) as u64;
        prop_assert_eq!((a * b).as_u64(), expected);
    }

    #[test]
    fn reduce128_matches_naive(x in any::<u128>()) {
        prop_assert_eq!(reduce::reduce128(x), (x % P as u128) as u64);
    }

    #[test]
    fn normalize_plus_addmod_is_reduce(x in any::<u128>()) {
        let (coarse, corrections) = reduce::normalize_eq4(x);
        prop_assert!(corrections <= 1);
        prop_assert_eq!(reduce::addmod_final(coarse), (x % P as u128) as u64);
    }

    #[test]
    fn inverse_is_inverse(a in arb_fp().prop_filter("nonzero", |x| !x.is_zero())) {
        prop_assert_eq!(a * a.inverse().unwrap(), Fp::ONE);
    }

    #[test]
    fn pow_adds_exponents(a in arb_fp(), e1 in 0u64..1000, e2 in 0u64..1000) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn mul_by_pow2_matches_pow_of_two_mul(a in arb_fp(), s in 0u32..400) {
        prop_assert_eq!(a.mul_by_pow2(s), a * Fp::TWO.pow(s as u64));
    }

    #[test]
    fn u192_add_homomorphic(a in arb_u192(), b in arb_u192()) {
        prop_assert_eq!(
            a.wrapping_add(b).to_fp(),
            a.to_fp() + b.to_fp()
        );
    }

    #[test]
    fn u192_rotl_homomorphic(a in arb_u192(), s in 0u32..192) {
        prop_assert_eq!(a.rotl(s).to_fp(), a.to_fp().mul_by_pow2(s));
    }

    #[test]
    fn u192_complement_negates(a in arb_u192()) {
        prop_assert_eq!(a.complement().to_fp(), -a.to_fp());
    }

    #[test]
    fn u192_sub_homomorphic(a in arb_u192(), b in arb_u192()) {
        prop_assert_eq!(a.wrapping_sub(b).to_fp(), a.to_fp() - b.to_fp());
    }

    #[test]
    fn power_table_is_geometric(n in 1usize..200) {
        let w = roots::OMEGA_64;
        let table = roots::power_table(w, n);
        for i in 1..n {
            prop_assert_eq!(table[i], table[i - 1] * w);
        }
    }

    #[test]
    fn batch_inverse_matches(xs in proptest::collection::vec(1u64..u64::MAX, 1..20)) {
        let mut values: Vec<Fp> = xs.iter().map(|&x| Fp::new(x))
            .filter(|f| !f.is_zero()).collect();
        if values.is_empty() { return Ok(()); }
        let expected: Vec<Fp> = values.iter().map(|v| v.inverse().unwrap()).collect();
        Fp::batch_inverse(&mut values);
        prop_assert_eq!(values, expected);
    }
}
