//! Arithmetic in the Solinas-prime field used by the DATE 2016 homomorphic
//! encryption accelerator of Cilardo and Argenziano.
//!
//! The accelerator performs all transform arithmetic in `Z/pZ` with
//! `p = 2^64 − 2^32 + 1`. This prime was chosen by the paper because
//!
//! * `2^96 ≡ −1 (mod p)`, hence `2^192 ≡ 1`, so `8 = 2^3` is a primitive
//!   64th root of unity and every twiddle factor *inside* a radix-64 block is
//!   a multiplication by a power of two — a **shift** in hardware (paper
//!   Eq. 3);
//! * any 128-bit value reduces with the word-level identity
//!   `a·2^96 + b·2^64 + c·2^32 + d ≡ 2^32(b + c) − a − b + d` (paper Eq. 4),
//!   which the accelerator's *Normalize* block implements with two additions
//!   and two subtractions.
//!
//! The crate provides:
//!
//! * [`Fp`] — a canonical field element with full operator support;
//! * [`reduce`] — the Eq. 4 reduction routines, exposed both as an exact
//!   reduction and as the hardware-style *coarse* reduction that may leave
//!   one correction to the `AddMod` stage;
//! * [`U192`] — a 192-bit end-around-carry accumulator: because
//!   `p | 2^192 − 1`, a 192-bit register with wrap-around carry is exact
//!   modulo `p`, and multiplication by `2^s` is a plain 192-bit rotation.
//!   This is the datapath the FFT-64 unit's shifter banks and carry-save
//!   adder trees operate on;
//! * [`roots`] — roots of unity, including the 65,536th root aligned so that
//!   `ω^1024 = 8`, which makes the paper's three-stage decomposition use the
//!   hardware shift twiddles exactly.
//!
//! # Example
//!
//! ```
//! use he_field::{Fp, roots};
//!
//! // 8 is a primitive 64th root of unity: 8^64 = 1, 8^32 = -1.
//! let omega = Fp::new(8);
//! assert_eq!(omega.pow(64), Fp::ONE);
//! assert_eq!(omega.pow(32), -Fp::ONE);
//!
//! // The 64K-point transform root is aligned with the hardware shifts.
//! let w = roots::omega_64k();
//! assert_eq!(w.pow(1024), omega);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
pub mod mont;
pub mod reduce;
pub mod roots;
mod u192;

pub use element::{Fp, TryFromIntError, EPSILON, P};
pub use u192::U192;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_constants_are_consistent() {
        assert_eq!(P, 0xFFFF_FFFF_0000_0001);
        assert_eq!(EPSILON, 0xFFFF_FFFF);
        assert_eq!(P.wrapping_add(EPSILON), 0); // p + ε = 2^64
    }
}
