//! A 192-bit end-around-carry accumulator.
//!
//! The FFT-64 unit's datapath keeps intermediate values in (up to) 192-bit
//! registers because `8^64 = 2^192 ≡ 1 (mod p)` bounds every twiddled sample
//! (paper, Section IV-b). The same identity means `p` divides `2^192 − 1`,
//! so arithmetic **modulo `2^192 − 1`** is compatible with arithmetic modulo
//! `p` — and modulo `2^192 − 1`:
//!
//! * addition is a 192-bit add whose carry-out wraps around to bit 0
//!   (end-around carry);
//! * multiplication by `2^s` is a plain **rotation** by `s` bits, which is
//!   what the unit's shifter banks implement;
//! * negation is bitwise complement (`x + !x = 2^192 − 1 ≡ 0`), which is how
//!   the adder tree realizes its *subtract* signal.
//!
//! [`U192`] models this datapath exactly; [`U192::to_fp`] is the Normalize +
//! AddMod back-end.

use core::fmt;

use crate::element::Fp;
use crate::reduce;

/// A 192-bit value interpreted modulo `2^192 − 1` (and therefore modulo
/// `p`), stored as three little-endian 64-bit limbs.
///
/// ```
/// use he_field::{Fp, U192};
///
/// let x = U192::from(Fp::new(12345));
/// let shifted = x.rotl(100); // multiply by 2^100
/// assert_eq!(shifted.to_fp(), Fp::new(12345).mul_by_pow2(100));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct U192 {
    limbs: [u64; 3],
}

impl U192 {
    /// The zero value.
    pub const ZERO: U192 = U192 { limbs: [0; 3] };

    /// Creates a value from three little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 3]) -> U192 {
        U192 { limbs }
    }

    /// The little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; 3] {
        self.limbs
    }

    /// Adds with end-around carry (arithmetic modulo `2^192 − 1`).
    #[inline]
    pub fn wrapping_add(self, rhs: U192) -> U192 {
        let (l0, c0) = self.limbs[0].overflowing_add(rhs.limbs[0]);
        let (l1a, c1a) = self.limbs[1].overflowing_add(rhs.limbs[1]);
        let (l1, c1b) = l1a.overflowing_add(c0 as u64);
        let carry1 = (c1a as u64) + (c1b as u64); // ≤ 1 in practice, ≤ 2 formally
        let (l2a, c2a) = self.limbs[2].overflowing_add(rhs.limbs[2]);
        let (l2, c2b) = l2a.overflowing_add(carry1);
        let carry_out = (c2a as u64) + (c2b as u64);
        // End-around: a carry out of bit 191 re-enters at bit 0 with weight
        // 2^192 ≡ 1 (mod 2^192 − 1). Adding it back can ripple, but never
        // produces a second carry-out unless the value was all-ones.
        let mut out = [l0, l1, l2];
        let mut c = carry_out;
        let mut i = 0;
        while c != 0 {
            let (v, overflow) = out[i % 3].overflowing_add(c);
            out[i % 3] = v;
            c = overflow as u64;
            i += 1;
        }
        U192 { limbs: out }
    }

    /// Bitwise complement: the additive inverse modulo `2^192 − 1`.
    ///
    /// This is the hardware's *subtract* signal: subtracting a term from a
    /// carry-save tree is adding its complement.
    #[inline]
    pub fn complement(self) -> U192 {
        U192 {
            limbs: [!self.limbs[0], !self.limbs[1], !self.limbs[2]],
        }
    }

    /// Subtracts modulo `2^192 − 1`.
    #[inline]
    pub fn wrapping_sub(self, rhs: U192) -> U192 {
        // x − y = x + !y + 1 would be two's complement; mod 2^192−1 the +1 is
        // absorbed: x + !y ≡ x − y.
        self.wrapping_add(rhs.complement())
    }

    /// Rotates left by `s` bits: multiplication by `2^s` modulo `2^192 − 1`.
    ///
    /// The FFT-64 unit's shifter banks are exactly this operation (Eq. 3
    /// twiddles are `2^{3ik}`).
    #[inline]
    pub fn rotl(self, s: u32) -> U192 {
        let s = s % 192;
        // Whole-limb rotation first, then a sub-limb shift. This form is
        // branch-lean (one three-way match plus one `k == 0` test), which
        // matters: the transform kernels execute one rotation per butterfly
        // term, making this the single hottest operation in the workspace.
        let [a, b, c] = self.limbs;
        let [a, b, c] = match s / 64 {
            0 => [a, b, c],
            1 => [c, a, b],
            _ => [b, c, a],
        };
        let k = s % 64;
        if k == 0 {
            return U192 { limbs: [a, b, c] };
        }
        U192 {
            limbs: [
                (a << k) | (c >> (64 - k)),
                (b << k) | (a >> (64 - k)),
                (c << k) | (b >> (64 - k)),
            ],
        }
    }

    /// Reduces to the canonical field element (the Normalize + AddMod
    /// back-end of the unit).
    #[inline]
    pub fn to_fp(self) -> Fp {
        let lo = (self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64);
        Fp::new(reduce::reduce192(lo, self.limbs[2]))
    }

    /// Whether the value represents zero (either the all-zeros or the
    /// all-ones pattern, which are congruent modulo `2^192 − 1`).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.limbs == [0; 3] || self.limbs == [u64::MAX; 3]
    }
}

impl core::ops::BitXor for U192 {
    type Output = U192;

    #[inline]
    fn bitxor(self, rhs: U192) -> U192 {
        U192 {
            limbs: [
                self.limbs[0] ^ rhs.limbs[0],
                self.limbs[1] ^ rhs.limbs[1],
                self.limbs[2] ^ rhs.limbs[2],
            ],
        }
    }
}

impl core::ops::BitAnd for U192 {
    type Output = U192;

    #[inline]
    fn bitand(self, rhs: U192) -> U192 {
        U192 {
            limbs: [
                self.limbs[0] & rhs.limbs[0],
                self.limbs[1] & rhs.limbs[1],
                self.limbs[2] & rhs.limbs[2],
            ],
        }
    }
}

impl core::ops::BitOr for U192 {
    type Output = U192;

    #[inline]
    fn bitor(self, rhs: U192) -> U192 {
        U192 {
            limbs: [
                self.limbs[0] | rhs.limbs[0],
                self.limbs[1] | rhs.limbs[1],
                self.limbs[2] | rhs.limbs[2],
            ],
        }
    }
}

impl From<Fp> for U192 {
    #[inline]
    fn from(value: Fp) -> U192 {
        U192 {
            limbs: [value.as_u64(), 0, 0],
        }
    }
}

impl From<u64> for U192 {
    #[inline]
    fn from(value: u64) -> U192 {
        U192 {
            limbs: [value, 0, 0],
        }
    }
}

impl fmt::Debug for U192 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U192(0x{:016x}_{:016x}_{:016x})",
            self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Display for U192 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::P;

    #[test]
    fn p_divides_2_192_minus_1() {
        // 2^192 − 1 mod p == 0, the identity everything here rests on.
        assert_eq!(Fp::TWO.pow(192), Fp::ONE);
    }

    #[test]
    fn add_matches_field() {
        let a = Fp::new(P - 1);
        let b = Fp::new(P - 2);
        let sum = U192::from(a).wrapping_add(U192::from(b));
        assert_eq!(sum.to_fp(), a + b);
    }

    #[test]
    fn end_around_carry() {
        let max = U192::from_limbs([u64::MAX; 3]);
        // all-ones ≡ 0 (mod 2^192 − 1)
        assert!(max.is_zero());
        assert_eq!(max.to_fp(), Fp::ZERO);
        // all-ones + 1 wraps to 1
        let one = max.wrapping_add(U192::from(1u64));
        assert_eq!(one.to_fp(), Fp::ONE);
    }

    #[test]
    fn complement_is_negation() {
        for v in [0u64, 1, 12345, P - 1] {
            let x = U192::from(Fp::new(v));
            assert_eq!(x.complement().to_fp(), -Fp::new(v));
            assert!(x.wrapping_add(x.complement()).is_zero());
        }
    }

    #[test]
    fn sub_matches_field() {
        let a = Fp::new(5);
        let b = Fp::new(7);
        assert_eq!(U192::from(a).wrapping_sub(U192::from(b)).to_fp(), a - b);
    }

    #[test]
    fn rotl_is_mul_by_pow2() {
        let x = Fp::new(0x0123_4567_89ab_cdef);
        let v = U192::from(x);
        for s in 0..192 {
            assert_eq!(v.rotl(s).to_fp(), x.mul_by_pow2(s), "shift {s}");
        }
        // Rotation composes.
        assert_eq!(v.rotl(100).rotl(92), v.rotl(0));
    }

    #[test]
    fn rotl_limb_boundaries() {
        let v = U192::from_limbs([0x8000_0000_0000_0001, 0, 0]);
        assert_eq!(v.rotl(64).limbs(), [0, 0x8000_0000_0000_0001, 0]);
        assert_eq!(v.rotl(128).limbs(), [0, 0, 0x8000_0000_0000_0001]);
        assert_eq!(v.rotl(1).limbs(), [2, 1, 0]);
        assert_eq!(v.rotl(192), v);
    }

    #[test]
    fn carry_save_compression_identity() {
        // a + b + c == (a^b^c) + ((majority) rotl 1) modulo 2^192−1: the 3:2
        // compressor identity with end-around carry, used by the FFT unit's
        // adder-tree model.
        let a = U192::from_limbs([0xdead_beef, u64::MAX, 1 << 63]);
        let b = U192::from_limbs([u64::MAX, 0x1234, 0xffff_0000_0000_0001]);
        let c = U192::from_limbs([1, 2, 3]);
        let xor = a ^ b ^ c;
        let maj = (a & b) | (a & c) | (b & c);
        let compressed = xor.wrapping_add(maj.rotl(1));
        let direct = a.wrapping_add(b).wrapping_add(c);
        assert_eq!(compressed.to_fp(), direct.to_fp());
    }

    #[test]
    fn accumulating_many_terms_matches_field_sum() {
        // Mimic the accumulator: 64 shifted samples summed in one register.
        let mut acc = U192::ZERO;
        let mut expected = Fp::ZERO;
        for i in 0..64u32 {
            let sample = Fp::new(0x1111_1111_1111_1111u64.wrapping_mul(i as u64 + 1));
            acc = acc.wrapping_add(U192::from(sample).rotl(3 * i));
            expected += sample.mul_by_pow2(3 * i);
        }
        assert_eq!(acc.to_fp(), expected);
    }
}
