//! Montgomery multiplication — the generic alternative the paper's Solinas
//! prime makes unnecessary.
//!
//! Choosing `p = 2^64 − 2^32 + 1` lets the hardware reduce with Eq. 4
//! (two additions, two subtractions, zero multiplications). A generic
//! 64-bit prime would need Montgomery reduction instead: one extra 64×64
//! multiplication and one 64×64→128 multiplication per reduction — i.e.
//! more DSP blocks on the critical path of every butterfly. This module
//! implements Montgomery for `p` so the ablation benches can quantify the
//! difference on the same operands.

use crate::element::{Fp, P};

/// `−p^{−1} mod 2^64`, precomputed by Newton iteration.
pub const P_INV_NEG: u64 = {
    // x_{k+1} = x_k·(2 − p·x_k) doubles correct bits; start from p which is
    // correct to 3 bits for odd p.
    let mut inv: u64 = P; // p⁻¹ mod 2^3 seed (p ≡ 1 mod 8 ⇒ inv ≡ 1·… works)
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(P.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
};

/// `R² mod p` where `R = 2^64`, for conversions into Montgomery form:
/// `2^128 ≡ −2^32 (mod p)`.
pub fn r_squared() -> Fp {
    -Fp::ONE.mul_by_pow2(32)
}

/// Montgomery REDC: given `t < p·2^64`, returns `t·2^{−64} mod p`.
#[inline]
pub fn redc(t: u128) -> u64 {
    let m = (t as u64).wrapping_mul(P_INV_NEG);
    // t + m·p can exceed 2^128; keep the carry explicitly. The low 64 bits
    // cancel by construction of m.
    let (sum, overflow) = t.overflowing_add(m as u128 * P as u128);
    let folded = (sum >> 64) + ((overflow as u128) << 64);
    // folded < 2p: one conditional subtraction suffices.
    if folded >= P as u128 {
        (folded - P as u128) as u64
    } else {
        folded as u64
    }
}

/// A value held in Montgomery form (`a·2^64 mod p`).
///
/// ```
/// use he_field::{mont::MontFp, Fp};
///
/// let a = Fp::new(123_456_789);
/// let b = Fp::new(987_654_321);
/// let ma = MontFp::from_fp(a);
/// let mb = MontFp::from_fp(b);
/// assert_eq!((ma * mb).to_fp(), a * b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MontFp(u64);

impl MontFp {
    /// Converts into Montgomery form (one Montgomery multiplication by
    /// `R²`).
    pub fn from_fp(value: Fp) -> MontFp {
        let r2 = r_squared().as_u64();
        MontFp(redc(value.as_u64() as u128 * r2 as u128))
    }

    /// Converts back to the canonical representation.
    pub fn to_fp(self) -> Fp {
        Fp::new(redc(self.0 as u128))
    }

    /// The raw Montgomery-form word.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::ops::Mul for MontFp {
    type Output = MontFp;

    #[inline]
    fn mul(self, rhs: MontFp) -> MontFp {
        MontFp(redc(self.0 as u128 * rhs.0 as u128))
    }
}

impl core::ops::Add for MontFp {
    type Output = MontFp;

    #[inline]
    fn add(self, rhs: MontFp) -> MontFp {
        // Montgomery form is closed under plain modular addition.
        MontFp((Fp::new(self.0) + Fp::new(rhs.0)).as_u64())
    }
}

/// Hardware-cost comparison of the two reduction strategies, per modular
/// multiplication (for the §8 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionCost {
    /// 64×64-bit multiplier instances on the reduction path.
    pub multipliers: u32,
    /// Adder/subtractor instances on the reduction path.
    pub adders: u32,
}

/// Eq. 4 (Solinas) reduction cost: adders only.
pub const SOLINAS_COST: ReductionCost = ReductionCost {
    multipliers: 0,
    adders: 4,
};

/// Montgomery reduction cost: two extra multiplications plus the fold-up
/// addition.
pub const MONTGOMERY_COST: ReductionCost = ReductionCost {
    multipliers: 2,
    adders: 2,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_inv_neg_is_correct() {
        // p · (−p⁻¹) ≡ −1 (mod 2^64)
        assert_eq!(P.wrapping_mul(P_INV_NEG), u64::MAX);
        assert_eq!(P.wrapping_mul(P_INV_NEG.wrapping_neg()), 1);
    }

    #[test]
    fn redc_of_zero_and_r() {
        assert_eq!(redc(0), 0);
        // R·1 REDCs to 1? redc(R) = R·R⁻¹ = 1... redc takes t = 2^64:
        assert_eq!(redc(1u128 << 64), 1);
    }

    #[test]
    fn roundtrip() {
        for v in [0u64, 1, 2, 0xffff_ffff, P - 1, 0x1234_5678_9abc_def0] {
            let x = Fp::new(v);
            assert_eq!(MontFp::from_fp(x).to_fp(), x, "v = {v:#x}");
        }
    }

    #[test]
    fn multiplication_agrees_with_eq4_path() {
        let samples = [1u64, 2, 8, 0xffff_ffff, P - 1, 0xdead_beef_cafe_f00d % P];
        for &a in &samples {
            for &b in &samples {
                let fa = Fp::new(a);
                let fb = Fp::new(b);
                assert_eq!(
                    (MontFp::from_fp(fa) * MontFp::from_fp(fb)).to_fp(),
                    fa * fb,
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn addition_in_montgomery_form() {
        let a = Fp::new(P - 3);
        let b = Fp::new(7);
        assert_eq!((MontFp::from_fp(a) + MontFp::from_fp(b)).to_fp(), a + b);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the hardware claim
    fn ablation_costs_favor_solinas() {
        assert_eq!(SOLINAS_COST.multipliers, 0);
        assert!(MONTGOMERY_COST.multipliers > SOLINAS_COST.multipliers);
    }

    #[test]
    fn r_squared_is_consistent() {
        // R² in Montgomery form must equal R (i.e. from_fp(R² as Fp)…):
        // simpler: converting 1 and multiplying by itself stays 1.
        let one = MontFp::from_fp(Fp::ONE);
        assert_eq!((one * one).to_fp(), Fp::ONE);
        let _ = r_squared();
    }
}
