//! Modular reduction via the paper's Eq. 4.
//!
//! For `p = 2^64 − 2^32 + 1` the key identities are
//!
//! * `2^64 ≡ 2^32 − 1` (so `b·2^64 ≡ 2^32·b − b`),
//! * `2^96 ≡ −1` (so `a·2^96 ≡ −a`),
//! * `2^128 ≡ −2^32`,
//!
//! giving the paper's Eq. 4 for a 128-bit value split into 32-bit words
//! `a·2^96 + b·2^64 + c·2^32 + d`:
//!
//! ```text
//! a·2^96 + b·2^64 + c·2^32 + d ≡ 2^32·(b + c) − a − b + d   (mod p)
//! ```
//!
//! The hardware computes the right-hand side in the *Normalize* block and
//! leaves at most one addition/subtraction of `p` to the *AddMod* block;
//! [`normalize_eq4`] models exactly that split, while [`reduce128`] performs
//! the complete reduction.

use crate::element::P;

/// Fully reduces a 128-bit value to its canonical residue.
///
/// ```
/// use he_field::reduce::reduce128;
/// use he_field::P;
///
/// assert_eq!(reduce128(0), 0);
/// assert_eq!(reduce128(P as u128), 0);
/// assert_eq!(reduce128(u128::MAX), (u128::MAX % P as u128) as u64);
/// ```
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let (coarse, _) = normalize_eq4(x);
    // Eq. 4 leaves a value < 2^65 + 2^32; at most two subtractions of p
    // remain (the hardware performs the final one in AddMod).
    let mut r = coarse;
    while r >= P as u128 {
        r -= P as u128;
    }
    r as u64
}

/// The hardware *Normalize* block: applies Eq. 4 once and reports how many
/// subtractions of `p` were internally folded while assembling the result.
///
/// Returns `(coarse, corrections)` where `coarse ≡ x (mod p)`,
/// `coarse < 2^65`, and `corrections` counts the `±p` adjustments Eq. 4
/// itself needed (0 or 1). The remaining conditional subtraction is the
/// *AddMod* stage, modeled by [`addmod_final`].
///
/// ```
/// use he_field::reduce::{addmod_final, normalize_eq4};
/// use he_field::P;
///
/// let x = (P as u128 - 1) * (P as u128 - 1);
/// let (coarse, _) = normalize_eq4(x);
/// assert_eq!(addmod_final(coarse), (x % P as u128) as u64);
/// ```
#[inline]
pub fn normalize_eq4(x: u128) -> (u128, u32) {
    let d = (x as u32) as u128;
    let c = ((x >> 32) as u32) as u128;
    let b = ((x >> 64) as u32) as u128;
    let a = ((x >> 96) as u32) as u128;

    // 2^32·(b + c) + d  ≤ (2^33 − 2)·2^32 + 2^32 − 1 < 2^66 (fits u128).
    let positive = ((b + c) << 32) + d;
    // a + b ≤ 2^33 − 2 < p, so one addition of p suffices if it underflows.
    let negative = a + b;

    if positive >= negative {
        (positive - negative, 0)
    } else {
        (positive + P as u128 - negative, 1)
    }
}

/// The hardware *AddMod* block: final conditional subtraction(s) bringing the
/// coarse Normalize output into `[0, p)`.
///
/// # Panics
///
/// Panics in debug builds if `coarse ≥ 3p` (the Normalize block never
/// produces such a value).
#[inline]
pub fn addmod_final(coarse: u128) -> u64 {
    debug_assert!(coarse < 3 * P as u128);
    let mut r = coarse;
    while r >= P as u128 {
        r -= P as u128;
    }
    r as u64
}

/// Reduces a 192-bit value given as `hi·2^128 + lo` (with `lo` a full 128-bit
/// word).
///
/// Uses `2^128 ≡ −2^32`: `hi·2^128 + lo ≡ lo − hi·2^32`.
///
/// ```
/// use he_field::reduce::reduce192;
/// use he_field::Fp;
///
/// // 2^128 = -(2^32) mod p
/// assert_eq!(
///     Fp::new(reduce192(0, 1)),
///     -Fp::ONE.mul_by_pow2(32),
/// );
/// ```
#[inline]
pub fn reduce192(lo: u128, hi: u64) -> u64 {
    // Split at bit 96 and use 2^96 ≡ −1: the value is l96 − rest with both
    // parts below 2^96. On underflow, add the multiple of p nearest 2^96:
    // p·(2^32 + 1) = 2^96 + 1. One 128-bit Eq. 4 reduction finishes the
    // job — this runs once per transform-kernel output, so the single-pass
    // form matters.
    const MASK96: u128 = (1u128 << 96) - 1;
    let l96 = lo & MASK96;
    let rest = (lo >> 96) | ((hi as u128) << 32); // < 2^96
    let d = if l96 >= rest {
        l96 - rest
    } else {
        l96 + ((1u128 << 96) + 1) - rest
    };
    reduce128(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive128(x: u128) -> u64 {
        (x % P as u128) as u64
    }

    #[test]
    fn reduce128_matches_naive_on_edges() {
        let cases = [
            0u128,
            1,
            P as u128 - 1,
            P as u128,
            P as u128 + 1,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            u128::MAX,
            u128::MAX - 1,
            (P as u128) * (P as u128) - 1, // largest product of two residues
            (P as u128 - 1) * (P as u128 - 1),
            1u128 << 96,
            (1u128 << 96) - 1,
            1u128 << 127,
        ];
        for &x in &cases {
            assert_eq!(reduce128(x), naive128(x), "x = {x:#x}");
        }
    }

    #[test]
    fn reduce128_dense_sweep() {
        // Structured values exercising all four Eq. 4 words.
        for a in [0u128, 1, 0xffff_ffff] {
            for b in [0u128, 1, 0xffff_ffff] {
                for c in [0u128, 1, 0xffff_ffff] {
                    for d in [0u128, 1, 0xffff_ffff] {
                        let x = (a << 96) | (b << 64) | (c << 32) | d;
                        assert_eq!(reduce128(x), naive128(x), "x = {x:#x}");
                    }
                }
            }
        }
    }

    #[test]
    fn normalize_then_addmod_is_full_reduction() {
        let cases = [
            0u128,
            u128::MAX,
            (P as u128 - 1) * (P as u128 - 1),
            0xdead_beef_dead_beef_dead_beef_dead_beef,
        ];
        for &x in &cases {
            let (coarse, corrections) = normalize_eq4(x);
            assert!(corrections <= 1);
            assert!(coarse < 1u128 << 66);
            assert_eq!(addmod_final(coarse), naive128(x));
        }
    }

    #[test]
    fn reduce192_matches_naive() {
        let cases: [(u128, u64); 6] = [
            (0, 0),
            (u128::MAX, u64::MAX),
            (1, 1),
            (P as u128, 0xffff_ffff),
            (
                0x0123_4567_89ab_cdef_0123_4567_89ab_cdef,
                0xfedc_ba98_7654_3210,
            ),
            (u128::MAX, 0),
        ];
        for &(lo, hi) in &cases {
            // naive: (hi·2^128 + lo) mod p using 256-bit arithmetic via steps
            let hi_mod = ((hi as u128) << 32) % P as u128; // hi·2^32
            let lo_mod = lo % P as u128;
            let expected = ((lo_mod + P as u128 - hi_mod % P as u128) % P as u128) as u64;
            assert_eq!(reduce192(lo, hi), expected, "lo={lo:#x} hi={hi:#x}");
        }
    }
}
