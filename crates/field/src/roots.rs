//! Roots of unity for the transforms of Section III.
//!
//! The multiplicative group of `F_p` has order `p − 1 = 2^32 · (2^32 − 1)`,
//! so primitive `2^k`-th roots exist for every `k ≤ 32`. `7` generates the
//! whole group.
//!
//! The hardware relies on the 64th root being exactly `8` (Eq. 3), so the
//! 65,536th root used by the three-stage decomposition (Eq. 2) is chosen
//! such that `ω^1024 = 8`; [`omega_64k`] performs that alignment once.

use std::sync::OnceLock;

use crate::element::{Fp, P};

/// A generator of the full multiplicative group `F_p^×`.
pub const GENERATOR: Fp = Fp::from_canonical(7);

/// The primitive 64th root of unity the FFT-64 unit is built around:
/// `ω_64 = 8`, so all its twiddles are 3-bit shifts (Eq. 3).
pub const OMEGA_64: Fp = Fp::from_canonical(8);

/// The primitive 16th root used by the radix-16 pass: `8^4 = 2^12`.
pub const OMEGA_16: Fp = Fp::from_canonical(1 << 12);

/// The primitive 8th root: `8^8 = 2^24`.
pub const OMEGA_8: Fp = Fp::from_canonical(1 << 24);

/// The primitive 32nd root that is still a power of two: `2^6`
/// (since `(2^6)^32 = 2^192 = 1` and `(2^6)^16 = 2^96 = −1`).
pub const OMEGA_32: Fp = Fp::from_canonical(1 << 6);

/// Returns a primitive `2^log2_order`-th root of unity, `7^((p−1)/2^k)`.
///
/// These roots form a coherent chain: `root(k+1)^2 = root(k)`.
///
/// # Panics
///
/// Panics if `log2_order > 32` (the 2-adicity of `p − 1`).
///
/// ```
/// use he_field::{roots, Fp};
/// let w = roots::two_adic_root(10); // 1024th root
/// assert_eq!(w.pow(1024), Fp::ONE);
/// assert_eq!(w.pow(512), -Fp::ONE);
/// ```
pub fn two_adic_root(log2_order: u32) -> Fp {
    assert!(
        log2_order <= Fp::TWO_ADICITY,
        "no 2^{log2_order}-th root of unity: 2-adicity is {}",
        Fp::TWO_ADICITY
    );
    GENERATOR.pow((P - 1) >> log2_order)
}

/// Returns a primitive `order`-th root of unity for any `order` dividing
/// `p − 1`, or `None` otherwise.
///
/// For power-of-two orders ≤ 64 the returned root is the hardware-friendly
/// power of two (`8`, `2^12`, …) and for 65,536 it is [`omega_64k`], so all
/// roots produced by this function are mutually consistent
/// (`root(nm)^m = root(n)` for the supported power-of-two chain).
pub fn root_of_unity(order: u64) -> Option<Fp> {
    if order == 0 || !(P - 1).is_multiple_of(order) {
        return None;
    }
    if order.is_power_of_two() {
        let log2 = order.trailing_zeros();
        if order <= 65_536 {
            // Derive from the aligned 64K root so the chain is consistent
            // with the hardware shift twiddles.
            return Some(omega_64k().pow(65_536 / order));
        }
        return Some(two_adic_root(log2));
    }
    Some(GENERATOR.pow((P - 1) / order))
}

/// The primitive 65,536th root of unity `ω` aligned so that `ω^1024 = 8`.
///
/// Alignment matters: the three-stage 64K decomposition (Eq. 2) computes its
/// inner 64-point sub-transforms with twiddles `ω_64^{ik} = ω^{1024·ik}`;
/// choosing `ω` with `ω^1024 = 8` makes those exactly the shift-only
/// twiddles of the FFT-64 hardware unit.
///
/// ```
/// use he_field::{roots, Fp};
/// let w = roots::omega_64k();
/// assert_eq!(w.pow(65_536), Fp::ONE);
/// assert_eq!(w.pow(1024), Fp::new(8));
/// ```
pub fn omega_64k() -> Fp {
    static OMEGA: OnceLock<Fp> = OnceLock::new();
    *OMEGA.get_or_init(|| {
        let r = two_adic_root(16); // some primitive 65,536th root
        let w64 = r.pow(1024); // a primitive 64th root
                               // 8 is a primitive 64th root, so 8 = w64^t for a unique odd t mod 64;
                               // then ω = r^t is a primitive 65,536th root with ω^1024 = 8.
        for t in (1u64..64).step_by(2) {
            if w64.pow(t) == OMEGA_64 {
                return r.pow(t);
            }
        }
        unreachable!("8 generates the order-64 subgroup, so an odd t exists")
    })
}

/// The primitive 4096th root used for the stage-2 twiddles of Eq. 2:
/// `ω_4096 = ω_64k^16`, so `ω_4096^64 = 8`.
pub fn omega_4k() -> Fp {
    omega_64k().pow(16)
}

/// Precomputed table of the `n` powers `ω^0 … ω^{n−1}` of an `n`-th root.
///
/// # Panics
///
/// Panics if `n` does not divide `p − 1`.
pub fn power_table(omega: Fp, n: usize) -> Vec<Fp> {
    let mut table = Vec::with_capacity(n);
    let mut acc = Fp::ONE;
    for _ in 0..n {
        table.push(acc);
        acc *= omega;
    }
    table
}

/// Verifies that `omega` is a primitive `order`-th root of unity.
pub fn is_primitive_root(omega: Fp, order: u64) -> bool {
    if omega.pow(order) != Fp::ONE {
        return false;
    }
    // Check omega^(order/q) != 1 for every prime q | order.
    let mut n = order;
    let mut primes = Vec::new();
    let mut q = 2;
    while q * q <= n {
        if n.is_multiple_of(q) {
            primes.push(q);
            while n.is_multiple_of(q) {
                n /= q;
            }
        }
        q += 1;
    }
    if n > 1 {
        primes.push(n);
    }
    primes.iter().all(|&q| omega.pow(order / q) != Fp::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_primitive() {
        // ord(7) = p−1 iff 7^((p−1)/q) ≠ 1 for primes q | p−1.
        // p−1 = 2^32 · (2^32 − 1) = 2^32 · 3 · 5 · 17 · 257 · 65537.
        for q in [2u64, 3, 5, 17, 257, 65_537] {
            assert_ne!(GENERATOR.pow((P - 1) / q), Fp::ONE, "q = {q}");
        }
    }

    #[test]
    fn named_roots_are_primitive_powers_of_two() {
        assert!(is_primitive_root(OMEGA_8, 8));
        assert!(is_primitive_root(OMEGA_16, 16));
        assert!(is_primitive_root(OMEGA_32, 32));
        assert!(is_primitive_root(OMEGA_64, 64));
        assert_eq!(OMEGA_64.pow(4), OMEGA_16);
        assert_eq!(OMEGA_16.pow(2), OMEGA_8);
        assert_eq!(OMEGA_32.pow(2), OMEGA_16);
    }

    #[test]
    fn two_adic_chain() {
        for k in 1..=12 {
            let w = two_adic_root(k);
            assert!(is_primitive_root(w, 1 << k), "k = {k}");
            assert_eq!(two_adic_root(k + 1).square(), w);
        }
        assert!(is_primitive_root(two_adic_root(32), 1 << 32));
    }

    #[test]
    #[should_panic(expected = "2-adicity")]
    fn two_adic_root_rejects_large_order() {
        let _ = two_adic_root(33);
    }

    #[test]
    fn omega_64k_alignment() {
        let w = omega_64k();
        assert!(is_primitive_root(w, 65_536));
        assert_eq!(w.pow(1024), OMEGA_64);
        assert_eq!(omega_4k().pow(64), OMEGA_64);
        assert_eq!(omega_4k(), w.pow(16));
        assert!(is_primitive_root(omega_4k(), 4096));
    }

    #[test]
    fn root_of_unity_chain_consistency() {
        // root(nm)^m = root(n) across the power-of-two chain ≤ 64K.
        let orders = [2u64, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 65_536];
        for &n in &orders {
            let w = root_of_unity(n).unwrap();
            assert!(is_primitive_root(w, n), "order {n}");
            for &m in &orders {
                if m < n && n % m == 0 {
                    assert_eq!(w.pow(n / m), root_of_unity(m).unwrap(), "{n} -> {m}");
                }
            }
        }
        // Small roots equal the hardware constants.
        assert_eq!(root_of_unity(64), Some(OMEGA_64));
        assert_eq!(root_of_unity(16), Some(OMEGA_16));
    }

    #[test]
    fn root_of_unity_non_dividing_order() {
        assert_eq!(root_of_unity(0), None);
        assert_eq!(root_of_unity(7), None); // 7 does not divide p−1
        assert!(root_of_unity(3).is_some());
        assert!(root_of_unity(5).is_some());
        assert!(root_of_unity(65_537).is_some());
    }

    #[test]
    fn power_table_contents() {
        let table = power_table(OMEGA_64, 64);
        assert_eq!(table.len(), 64);
        assert_eq!(table[0], Fp::ONE);
        assert_eq!(table[1], OMEGA_64);
        assert_eq!(table[63] * OMEGA_64, Fp::ONE);
    }
}
