//! The canonical field element type.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::reduce;

/// The Solinas prime `p = 2^64 − 2^32 + 1` chosen by the paper (Section III).
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// `ε = 2^64 − p = 2^32 − 1`; folding a carry out of 64 bits adds `ε`.
pub const EPSILON: u64 = 0xFFFF_FFFF;

/// An element of `F_p` with `p = 2^64 − 2^32 + 1`, stored canonically in
/// `[0, p)`.
///
/// All arithmetic reduces through the paper's Eq. 4 word-level identity (see
/// [`crate::reduce`]), mirroring what the accelerator's *Normalize* and
/// *AddMod* blocks compute.
///
/// # Example
///
/// ```
/// use he_field::Fp;
///
/// let a = Fp::new(5);
/// let b = a.inverse().expect("5 is invertible");
/// assert_eq!(a * b, Fp::ONE);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fp(u64);

/// Error returned by [`Fp::try_from`] for a non-canonical residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TryFromIntError {
    value: u64,
}

impl TryFromIntError {
    /// The offending value (`≥ p`).
    pub fn value(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for TryFromIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {:#x} is not a canonical residue modulo p",
            self.value
        )
    }
}

impl std::error::Error for TryFromIntError {}

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);
    /// The element `2`, whose multiplicative order is 192.
    pub const TWO: Fp = Fp(2);
    /// `p − 1`, i.e. `−1`.
    pub const NEG_ONE: Fp = Fp(P - 1);
    /// The order of the multiplicative group, `p − 1 = 2^32 · (2^32 − 1)`.
    pub const GROUP_ORDER: u64 = P - 1;
    /// The 2-adicity of `p − 1`: the group contains roots of unity of every
    /// power-of-two order up to `2^32`.
    pub const TWO_ADICITY: u32 = 32;

    /// Creates an element, reducing `value` modulo `p`.
    ///
    /// ```
    /// use he_field::{Fp, P};
    /// assert_eq!(Fp::new(P), Fp::ZERO);
    /// assert_eq!(Fp::new(P + 3), Fp::new(3));
    /// ```
    #[inline]
    pub const fn new(value: u64) -> Fp {
        // At most one subtraction: value < 2^64 < 2p.
        if value >= P {
            Fp(value - P)
        } else {
            Fp(value)
        }
    }

    /// Creates an element from a canonical residue without reduction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value ≥ p`.
    #[inline]
    pub const fn from_canonical(value: u64) -> Fp {
        debug_assert!(value < P);
        Fp(value)
    }

    /// Creates an element by fully reducing a 128-bit value with Eq. 4.
    #[inline]
    pub fn from_u128(value: u128) -> Fp {
        Fp(reduce::reduce128(value))
    }

    /// The canonical residue in `[0, p)`.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Doubles the element.
    #[inline]
    pub fn double(self) -> Fp {
        self + self
    }

    /// Squares the element.
    #[inline]
    pub fn square(self) -> Fp {
        self * self
    }

    /// Raises the element to the power `exp` by square-and-multiply.
    ///
    /// ```
    /// use he_field::Fp;
    /// assert_eq!(Fp::TWO.pow(192), Fp::ONE); // ord(2) = 192
    /// assert_eq!(Fp::TWO.pow(96), -Fp::ONE); // 2^96 = -1
    /// ```
    pub fn pow(self, mut exp: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp != 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base = base.square();
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Computed as `self^(p−2)` (Fermat).
    ///
    /// ```
    /// use he_field::Fp;
    /// assert_eq!(Fp::ZERO.inverse(), None);
    /// let x = Fp::new(123_456_789);
    /// assert_eq!(x * x.inverse().unwrap(), Fp::ONE);
    /// ```
    pub fn inverse(self) -> Option<Fp> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(P - 2))
        }
    }

    /// Multiplies by `2^shift` where `shift` is taken modulo 192.
    ///
    /// Because `2^96 ≡ −1 (mod p)`, every power of two is `±2^s` with
    /// `s < 96`; the accelerator's shifter banks implement exactly this (the
    /// paper's Eq. 3 twiddles `8^{ik} = 2^{3ik}`).
    ///
    /// ```
    /// use he_field::Fp;
    /// let x = Fp::new(0xdead_beef);
    /// assert_eq!(x.mul_by_pow2(0), x);
    /// assert_eq!(x.mul_by_pow2(96), -x);
    /// assert_eq!(x.mul_by_pow2(192), x);
    /// assert_eq!(x.mul_by_pow2(3), x * Fp::new(8));
    /// ```
    #[inline]
    pub fn mul_by_pow2(self, shift: u32) -> Fp {
        let s = shift % 192;
        let (s, negate) = if s >= 96 { (s - 96, true) } else { (s, false) };
        // self · 2^s with s < 96 fits in 160 bits; split as limbs.
        let r = if s == 0 {
            *self.as_ref()
        } else if s < 64 {
            reduce::reduce128((self.0 as u128) << s)
        } else {
            // s in [64, 96): value = (self · 2^(s−64)) · 2^64, which occupies
            // bits [64, 160) of a 192-bit word.
            let v = (self.0 as u128) << (s - 64); // < 2^96
            reduce::reduce192(((v as u64) as u128) << 64, (v >> 64) as u64)
        };
        let r = Fp(r);
        if negate {
            -r
        } else {
            r
        }
    }

    /// Exponent `s` such that `self = 2^s (mod p)`, if the element is a power
    /// of two; `s` is unique modulo 192.
    pub fn log2_of_pow2(self) -> Option<u32> {
        let mut probe = Fp::ONE;
        for s in 0..192 {
            if probe == self {
                return Some(s);
            }
            probe = probe.double();
        }
        None
    }

    /// Batch inversion by Montgomery's trick: one field inversion plus
    /// `3(n−1)` multiplications.
    ///
    /// # Panics
    ///
    /// Panics if any element is zero.
    pub fn batch_inverse(values: &mut [Fp]) {
        if values.is_empty() {
            return;
        }
        let mut prefix = Vec::with_capacity(values.len());
        let mut acc = Fp::ONE;
        for &v in values.iter() {
            assert!(!v.is_zero(), "batch_inverse: zero element");
            prefix.push(acc);
            acc *= v;
        }
        let mut inv = acc.inverse().expect("product of nonzero elements");
        for i in (0..values.len()).rev() {
            let orig = values[i];
            values[i] = inv * prefix[i];
            inv *= orig;
        }
    }
}

impl AsRef<u64> for Fp {
    #[inline]
    fn as_ref(&self) -> &u64 {
        &self.0
    }
}

impl From<u32> for Fp {
    #[inline]
    fn from(value: u32) -> Fp {
        Fp(value as u64)
    }
}

impl From<u16> for Fp {
    #[inline]
    fn from(value: u16) -> Fp {
        Fp(value as u64)
    }
}

impl From<u8> for Fp {
    #[inline]
    fn from(value: u8) -> Fp {
        Fp(value as u64)
    }
}

impl From<bool> for Fp {
    #[inline]
    fn from(value: bool) -> Fp {
        Fp(value as u64)
    }
}

impl TryFrom<u64> for Fp {
    type Error = TryFromIntError;

    /// Accepts only canonical residues; use [`Fp::new`] to reduce instead.
    fn try_from(value: u64) -> Result<Fp, TryFromIntError> {
        if value < P {
            Ok(Fp(value))
        } else {
            Err(TryFromIntError { value })
        }
    }
}

impl From<Fp> for u64 {
    #[inline]
    fn from(value: Fp) -> u64 {
        value.0
    }
}

impl Add for Fp {
    type Output = Fp;

    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let (sum, carry) = self.0.overflowing_add(rhs.0);
        // A carry out of 64 bits is worth 2^64 ≡ ε (mod p). sum < p ≤ 2^64−ε
        // in the carry case, so adding ε cannot overflow again after one
        // conditional correction.
        let mut r = sum;
        if carry {
            r = r.wrapping_add(EPSILON);
        }
        Fp::new(r)
    }
}

impl AddAssign for Fp {
    #[inline]
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl Sub for Fp {
    type Output = Fp;

    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        let r = if borrow { diff.wrapping_add(P) } else { diff };
        Fp(r)
    }
}

impl SubAssign for Fp {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl Neg for Fp {
    type Output = Fp;

    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(P - self.0)
        }
    }
}

impl Mul for Fp {
    type Output = Fp;

    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce::reduce128((self.0 as u128) * (rhs.0 as u128)))
    }
}

impl MulAssign for Fp {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl Div for Fp {
    type Output = Fp;

    /// # Panics
    ///
    /// Panics on division by zero.
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS inverse-multiply here
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inverse().expect("division by zero in Fp")
    }
}

impl DivAssign for Fp {
    #[inline]
    fn div_assign(&mut self, rhs: Fp) {
        *self = *self / rhs;
    }
}

impl Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Fp> for Fp {
    fn sum<I: Iterator<Item = &'a Fp>>(iter: I) -> Fp {
        iter.copied().sum()
    }
}

impl Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, Mul::mul)
    }
}

impl<'a> Product<&'a Fp> for Fp {
    fn product<I: Iterator<Item = &'a Fp>>(iter: I) -> Fp {
        iter.copied().product()
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::Octal for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mod_mul(a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % (P as u128)) as u64
    }

    #[test]
    fn new_reduces() {
        assert_eq!(Fp::new(P).as_u64(), 0);
        assert_eq!(Fp::new(u64::MAX).as_u64(), u64::MAX - P);
        assert_eq!(Fp::new(P - 1).as_u64(), P - 1);
    }

    #[test]
    fn add_wraps_correctly() {
        let a = Fp::new(P - 1);
        assert_eq!(a + Fp::ONE, Fp::ZERO);
        assert_eq!(a + a, Fp::new(P - 2));
        assert_eq!(Fp::ZERO + Fp::ZERO, Fp::ZERO);
        // Near-2^64 operands exercise the carry path.
        let b = Fp::new(P - 1);
        let c = Fp::new(P - 2);
        assert_eq!(
            (b + c).as_u64(),
            ((P as u128 - 1 + P as u128 - 2) % P as u128) as u64
        );
    }

    #[test]
    fn sub_borrows_correctly() {
        assert_eq!(Fp::ZERO - Fp::ONE, Fp::NEG_ONE);
        assert_eq!(Fp::new(5) - Fp::new(7), Fp::ZERO - Fp::TWO);
    }

    #[test]
    fn mul_matches_naive() {
        let samples = [
            0u64,
            1,
            2,
            EPSILON,
            EPSILON + 1,
            1 << 32,
            u32::MAX as u64,
            P - 1,
            P - 2,
            0x1234_5678_9abc_def0,
            0xfedc_ba98_7654_3210 % P,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    (Fp::new(a) * Fp::new(b)).as_u64(),
                    naive_mod_mul(a % P, b % P),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn two_has_order_192() {
        assert_eq!(Fp::TWO.pow(192), Fp::ONE);
        assert_eq!(Fp::TWO.pow(96), Fp::NEG_ONE);
        for d in [1u64, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96] {
            assert_ne!(Fp::TWO.pow(d), Fp::ONE, "2^{d} must not be 1");
        }
    }

    #[test]
    fn mul_by_pow2_matches_mul() {
        let x = Fp::new(0x1234_5678_9abc_def0);
        let mut expected = x;
        for s in 0..=384u32 {
            assert_eq!(x.mul_by_pow2(s), expected, "shift {s}");
            expected = expected.double();
        }
    }

    #[test]
    fn log2_of_pow2_roundtrips() {
        for s in 0..192 {
            assert_eq!(Fp::ONE.mul_by_pow2(s).log2_of_pow2(), Some(s));
        }
        assert_eq!(Fp::new(5).log2_of_pow2(), None);
    }

    #[test]
    fn inverse_and_div() {
        for v in [1u64, 2, 3, 8, EPSILON, P - 1] {
            let x = Fp::new(v);
            assert_eq!(x * x.inverse().unwrap(), Fp::ONE);
            assert_eq!((x / x), Fp::ONE);
        }
        assert_eq!(Fp::ZERO.inverse(), None);
    }

    #[test]
    fn batch_inverse_matches_individual() {
        let mut values: Vec<Fp> = (1u64..40).map(Fp::new).collect();
        let expected: Vec<Fp> = values.iter().map(|v| v.inverse().unwrap()).collect();
        Fp::batch_inverse(&mut values);
        assert_eq!(values, expected);
    }

    #[test]
    fn try_from_rejects_noncanonical() {
        assert!(Fp::try_from(P - 1).is_ok());
        let err = Fp::try_from(P).unwrap_err();
        assert_eq!(err.value(), P);
        assert!(err.to_string().contains("not a canonical residue"));
    }

    #[test]
    fn sum_and_product_impls() {
        let xs = [Fp::new(1), Fp::new(2), Fp::new(3)];
        assert_eq!(xs.iter().sum::<Fp>(), Fp::new(6));
        assert_eq!(xs.iter().product::<Fp>(), Fp::new(6));
        assert_eq!(xs.into_iter().sum::<Fp>(), Fp::new(6));
    }

    #[test]
    fn formatting() {
        let x = Fp::new(0xff);
        assert_eq!(format!("{x}"), "255");
        assert_eq!(format!("{x:x}"), "ff");
        assert_eq!(format!("{x:X}"), "FF");
        assert_eq!(format!("{x:b}"), "11111111");
        assert_eq!(format!("{x:o}"), "377");
        assert_eq!(format!("{x:?}"), "Fp(255)");
    }

    #[test]
    fn send_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Fp>();
        assert_sync::<Fp>();
    }
}
