//! Lattice workloads on the same transform hardware — the paper's claim
//! that LWE/RLWE-based schemes "may thus be implemented on top of the
//! accelerator" (Section III).
//!
//! RLWE symmetric encryption in `R = Z_p[X]/(X^1024 + 1)` using the
//! `he-poly` ring layer: every ring product is a negacyclic convolution
//! computed with the NTT machinery, i.e. the exact datapath the
//! accelerator provides.
//!
//! Run with: `cargo run --release -p he-accel --example rlwe_polymul`

use he_accel::poly::rlwe::RlweSecretKey;
use he_accel::poly::RingContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1024;

fn main() -> Result<(), he_accel::ntt::NttError> {
    let ring = RingContext::new(N)?;
    let mut rng = StdRng::seed_from_u64(1337);

    println!("ring: Z_p[X]/(X^{N} + 1), p = 2^64 - 2^32 + 1");
    let sk = RlweSecretKey::generate(&ring, &mut rng);

    let message: Vec<bool> = (0..N).map(|_| rng.gen()).collect();
    println!("encrypting a {N}-bit message (one negacyclic ring product)…");
    let ct = sk.encrypt(&message, &mut rng);

    println!("decrypting (one more ring product)…");
    let decrypted = sk.decrypt(&ct);
    let wrong = decrypted
        .iter()
        .zip(&message)
        .filter(|(a, b)| a != b)
        .count();
    println!("decoded {N} bits, {wrong} errors");
    assert_eq!(wrong, 0, "toy RLWE must decrypt exactly");

    // Homomorphic addition for good measure: XOR of two messages.
    let other: Vec<bool> = (0..N).map(|_| rng.gen()).collect();
    let sum = ct.add(&sk.encrypt(&other, &mut rng));
    let expected: Vec<bool> = message.iter().zip(&other).map(|(a, b)| a ^ b).collect();
    assert_eq!(sk.decrypt(&sum), expected);
    println!("homomorphic addition (slot-wise XOR) verified.");

    println!(
        "\nboth ring products ran on the negacyclic NTT — a ψ-twist around the\n\
         same cyclic transform the accelerator's FFT units compute, confirming\n\
         the paper's point that lattice schemes map onto this hardware."
    );
    Ok(())
}
