//! Computing on encrypted data in the cloud — the paper's motivating
//! scenario (Section I: "multiparty computation, medical applications,
//! financial computing, electronic voting").
//!
//! Part 1 (electronic voting): three voters encrypt their ballots with
//! DGHV; an untrusted server computes the majority homomorphically
//! (`maj(a,b,c) = ab ⊕ ac ⊕ bc`) without ever seeing a vote; only the key
//! holder can decrypt the tally.
//!
//! Part 2 (financial computing): two parties submit encrypted sealed bids;
//! the server selects the winning bid with an encrypted comparator and
//! bitwise multiplexers — it never learns either amount.
//!
//! Run with: `cargo run --release -p he-accel --example dghv_cloud_demo`

use he_accel::dghv::{
    circuits::{decrypt_number, encrypt_number},
    Ciphertext, CircuitEvaluator, DghvError, DghvParams, KeyPair, PublicKey, SsaBackend,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The "cloud": sees only ciphertexts and the public key.
/// `maj(a,b,c) = ab ⊕ ac ⊕ bc` — three homomorphic ANDs, two XORs.
fn tally_majority(
    pk: &PublicKey,
    backend: &SsaBackend,
    votes: &[Ciphertext; 3],
) -> Result<Ciphertext, DghvError> {
    let gates = CircuitEvaluator::new(pk, backend);
    let ab = gates.and(&votes[0], &votes[1])?;
    let ac = gates.and(&votes[0], &votes[2])?;
    let bc = gates.and(&votes[1], &votes[2])?;
    Ok(gates.xor(&gates.xor(&ab, &ac), &bc))
}

fn main() -> Result<(), DghvError> {
    let params = DghvParams::toy();
    println!(
        "DGHV parameters: rho={} eta={} gamma={} tau={} (toy security, {}-bit ciphertexts)",
        params.rho, params.eta, params.gamma, params.tau, params.gamma
    );

    let mut rng = StdRng::seed_from_u64(3);
    println!("key holder: generating keys…");
    let keys = KeyPair::generate(params, &mut rng)?;

    let ballots = [true, false, true];
    println!("voters: encrypting ballots {ballots:?}…");
    let votes = [
        keys.public().encrypt(ballots[0], &mut rng),
        keys.public().encrypt(ballots[1], &mut rng),
        keys.public().encrypt(ballots[2], &mut rng),
    ];
    for (i, v) in votes.iter().enumerate() {
        println!(
            "  ballot {i}: {} ciphertext bits, noise estimate {} bits",
            v.bit_len(),
            v.noise_bits()
        );
    }

    println!("cloud: tallying homomorphically (3 ciphertext multiplications on SSA)…");
    let backend = SsaBackend::for_gamma(params.gamma);
    let tally = tally_majority(keys.public(), &backend, &votes)?;
    println!(
        "  encrypted tally: {} bits, noise estimate {} / ceiling {} bits",
        tally.bit_len(),
        tally.noise_bits(),
        keys.public().noise_ceiling_bits()
    );

    let result = keys.secret().decrypt(&tally);
    let expected =
        (ballots[0] & ballots[1]) ^ (ballots[0] & ballots[2]) ^ (ballots[1] & ballots[2]);
    println!("key holder: decrypted majority = {result}");
    assert_eq!(
        result, expected,
        "homomorphic tally disagrees with plaintext"
    );
    println!("matches the plaintext majority ({expected}) — the cloud never saw a vote.");

    // Part 2: a sealed-bid auction on 4-bit encrypted amounts.
    let (bid_a, bid_b) = (9u64, 11u64);
    let width = 4;
    println!("\nsealed bids: two parties encrypt {bid_a} and {bid_b} ({width}-bit amounts)…");
    let ea = encrypt_number(keys.public(), bid_a, width, &mut rng);
    let eb = encrypt_number(keys.public(), bid_b, width, &mut rng);

    println!("cloud: comparing bids and selecting the winner homomorphically…");
    let gates = CircuitEvaluator::new(keys.public(), &backend);
    let a_lt_b = gates.less_than(&ea, &eb, &mut rng)?;
    let winning_bits = ea
        .iter()
        .zip(&eb)
        .map(|(xa, xb)| gates.mux(&a_lt_b, xb, xa))
        .collect::<Result<Vec<_>, _>>()?;

    let winner_is_b = keys.secret().decrypt(&a_lt_b);
    let winning_bid = decrypt_number(keys.secret(), &winning_bits);
    println!(
        "key holder: winner = bidder {}, winning bid = {winning_bid}",
        if winner_is_b { "B" } else { "A" }
    );
    assert_eq!(winning_bid, bid_a.max(bid_b));
    assert_eq!(winner_is_b, bid_a < bid_b);
    println!("the cloud compared and selected without learning either amount.");
    Ok(())
}
