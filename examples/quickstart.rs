//! Quickstart: multiply two 786,432-bit integers — the paper's workload —
//! with the classical algorithms, the Schönhage–Strassen multiplier, and
//! the simulated accelerator, and check they agree. Ends with the
//! batch-first session API: prepare a recurring operand once through
//! [`EvalEngine`] and stream products against the cached spectrum (see
//! `examples/transform_caching.rs` for the deep dive).
//!
//! Run with: `cargo run --release -p he-accel --example quickstart`

use std::time::Instant;

use he_accel::prelude::*;
use he_accel::{Karatsuba, Toom3};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), MultiplyError> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS;
    println!("generating two random {bits}-bit operands (the paper's DGHV 'small' setting)…");
    let mut rng = StdRng::seed_from_u64(2016);
    let a = UBig::random_bits(&mut rng, bits);
    let b = UBig::random_bits(&mut rng, bits);

    let time = |name: &str, f: &dyn Fn() -> Result<UBig, MultiplyError>| {
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        println!("  {name:<18} {elapsed:>12.2?}");
        result
    };

    println!("multiplying:");
    let karatsuba = time("karatsuba", &|| Karatsuba.multiply(&a, &b))?;
    let toom = time("toom-3", &|| Toom3.multiply(&a, &b))?;
    let ssa = SsaSoftware::paper();
    let ssa_product = time("schonhage-strassen", &|| ssa.multiply(&a, &b))?;

    assert_eq!(karatsuba, toom, "toom-3 disagrees");
    assert_eq!(karatsuba, ssa_product, "SSA disagrees");
    println!(
        "all software backends agree ({} product bits)",
        karatsuba.bit_len()
    );

    println!("\nsimulating the FPGA accelerator (4 PEs @ 200 MHz)…");
    let hw = HardwareSim::paper();
    let start = Instant::now();
    let (hw_product, report) = hw.multiply_with_report(&a, &b)?;
    let wall = start.elapsed();
    assert_eq!(hw_product, karatsuba, "hardware simulation disagrees");
    println!("bit-exact against software (simulation wall time {wall:.2?})");
    println!("\n{}", report.render());
    println!(
        "the paper reports ~122 us for this multiplication; the model gives {:.1} us",
        report.total_us()
    );

    // Server-style traffic: one recurring operand times a stream. Prepare
    // `a` once — its forward transform is cached behind the handle — and
    // run the whole batch through the engine.
    println!("\nbatch engine: 4 products against a prepared operand…");
    let engine = EvalEngine::new(SsaSoftware::paper());
    let handle = engine.prepare(&a)?;
    let stream: Vec<UBig> = (0..4)
        .map(|_| UBig::random_bits(&mut rng, bits / 2))
        .collect();
    let start = Instant::now();
    let products = engine.run_stream(&handle, &stream)?;
    let elapsed = start.elapsed();
    for (product, b) in products.iter().zip(&stream) {
        assert_eq!(product, &Karatsuba.multiply(&a, b)?);
    }
    println!(
        "{} cached-operand products in {elapsed:.2?}, bit-exact against karatsuba",
        products.len()
    );
    Ok(())
}
