//! The serving fleet on the network: a [`ServerPool`] behind a TCP
//! socket, driven by a remote [`NetSession`].
//!
//! Where `fleet_serving.rs` submits into the pool in process, this
//! walkthrough speaks the `he-net` wire protocol over loopback: every
//! product job is length-prefix framed, crosses a real socket, runs on
//! the resident fleet, and the answer frames come back through the
//! server's per-connection completion reactor. The session surface is
//! the same — pinned recurring operands (8 bytes on the wire per job
//! instead of the full operand), typed failures, fleet stats — so
//! everything built on [`Submitter`] runs remotely unchanged.
//!
//! Run with: `cargo run --release --example net_serving`

use std::time::Instant;

use he_accel::prelude::*;
use he_net::{NetServer, NetSession};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 16_384;
    let stream_len = 32;
    let mut rng = StdRng::seed_from_u64(41);
    let accumulator = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    // The fleet: two resident cards. `NetServer` takes ownership and
    // serves it until `shutdown`.
    println!("binding a 2-card fleet to a loopback TCP socket…");
    let pool = ServerPool::with_backend_factory(
        2,
        move |_card| EvalEngine::new(SsaSoftware::for_operand_bits(bits).expect("plan fits")),
        ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let server = NetServer::bind_tcp(pool, "127.0.0.1:0")?;
    let endpoint = server.local_endpoint();
    println!("fleet listening on {endpoint}");

    // The client: dial, then submit exactly as if the pool were local —
    // `NetSession` is a `Submitter`.
    let session = NetSession::connect(endpoint)?;
    let ticket = session.submit(ProductRequest::new(
        UBig::from(6u64) << 1000,
        UBig::from(7u64),
    ))?;
    println!(
        "first remote product served: {} bits",
        ticket.wait()?.bit_len()
    );

    // The pinned path: the recurring accumulator crosses the wire ONCE;
    // every job after that references it by 8-byte pin id, and the far
    // cards resolve it hash-free from their pinned caches.
    session.register("acc", accumulator.clone())?;
    let start = Instant::now();
    let tickets: Vec<ProductTicket> = stream
        .iter()
        .map(|b| session.submit_with("acc", b.clone()).expect("fleet alive"))
        .collect();
    for (b, ticket) in stream.iter().zip(tickets) {
        assert_eq!(ticket.wait()?, &accumulator * b, "bit-exact over the wire");
    }
    let elapsed = start.elapsed();
    println!(
        "served {stream_len} pinned products over TCP in {elapsed:.2?} \
         ({:.1} products/s)",
        stream_len as f64 / elapsed.as_secs_f64()
    );

    // Fleet observability crosses the wire too.
    let stats = session.stats()?;
    println!(
        "far fleet: {} completed, {} pinned-cache hits, {} flushes",
        stats.completed, stats.pinned_hits, stats.flushes
    );

    session.close();
    let final_stats = server.shutdown().total();
    println!(
        "server shut down cleanly ({} products served in total)",
        final_stats.completed
    );
    Ok(())
}
