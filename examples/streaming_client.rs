//! The streaming client surface: one reactor thread, many in-flight
//! products, recurring operands registered once.
//!
//! Where `server_stream.rs` holds one blocking [`ProductTicket`] per
//! in-flight product (a thread per product at scale), this walkthrough
//! drives the same resident server the completion-driven way:
//!
//! * a [`ClientSession`] registers the recurring accumulator **once** —
//!   every card pins its prepared spectrum by id, so no submission ever
//!   hashes the multi-KB operand again and no LRU pressure can evict it;
//! * a [`CompletionQueue`] keeps a bounded window of tagged products in
//!   flight from a single thread, draining completions in completion
//!   order and refilling as slots free up;
//! * tickets are still there when useful: polling (`try_wait`), bounded
//!   waits (`wait_timeout`) and withdrawal (`cancel`) round out the
//!   non-blocking surface.
//!
//! Run with: `cargo run --release --example streaming_client`

use std::time::{Duration, Instant};

use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS / 8;
    let stream_len = 32;
    let window = 8;
    let mut rng = StdRng::seed_from_u64(51);
    let accumulator = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    println!("spawning a resident server ({bits}-bit operands, micro-batches of 8)…");
    let server = ProductServer::spawn(
        EvalEngine::new(SsaSoftware::for_operand_bits(bits)?),
        ServeConfig {
            queue_capacity: 32,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            cache_capacity: 32,
            ..ServeConfig::default()
        },
    );

    // Register the recurring operand once; submissions reference it by
    // name from here on.
    let mut session = server.session();
    session.register("acc", accumulator.clone());

    // The reactor loop: a single thread keeps `window` products in
    // flight, tagged with their stream index.
    let start = Instant::now();
    let mut queue: CompletionQueue<'_, ClientSession, usize> = CompletionQueue::new(&session);
    let mut next = 0usize;
    let mut served = 0usize;
    while next < stream.len() && queue.in_flight() < window {
        queue
            .submit_tagged(session.request_with("acc", stream[next].clone()), next)
            .map_err(|(e, _)| e)?;
        next += 1;
    }
    while let Some(done) = queue.recv() {
        let product = done.result?;
        assert_eq!(
            product,
            &accumulator * &stream[done.tag],
            "completion {} is bit-exact",
            done.tag
        );
        served += 1;
        if next < stream.len() {
            queue
                .submit_tagged(session.request_with("acc", stream[next].clone()), next)
                .map_err(|(e, _)| e)?;
            next += 1;
        }
    }
    let elapsed = start.elapsed();
    println!(
        "served {served} products from one reactor thread ({window} in flight) in {elapsed:.2?} \
         ({:.1} products/s)",
        served as f64 / elapsed.as_secs_f64()
    );

    // The non-blocking ticket surface: poll, bound the wait, withdraw.
    let mut pending = session.submit_with("acc", stream[0].clone())?;
    let polled = match pending.try_wait() {
        Some(resolved) => resolved?,
        None => match pending.wait_timeout(Duration::from_secs(30)) {
            Some(resolved) => resolved?,
            None => pending.wait()?,
        },
    };
    assert_eq!(polled, &accumulator * &stream[0]);
    println!("ticket demo: polled + bounded waits resolved the product without a dedicated thread");

    let withdrawn = session.submit_with("acc", stream[1].clone())?;
    withdrawn.cancel();
    println!("cancel demo: a queued job was withdrawn (dropped at claim time if not yet running)");

    let stats = server.shutdown();
    println!(
        "\nserver lifetime: {} flushes (largest {}), {} completed, {} cancelled, \
         {} pinned hits (hash-free), digest cache {} hits / {} misses",
        stats.flushes,
        stats.largest_flush,
        stats.completed,
        stats.cancelled,
        stats.pinned_hits,
        stats.cache_hits,
        stats.cache_misses
    );
    Ok(())
}
