//! A multi-card serving fleet: several resident engines — each modeling
//! one accelerator card — pull deadline-aware micro-batches from one
//! shared queue.
//!
//! Where `server_stream.rs` runs the single-card [`ProductServer`], this
//! walkthrough spawns a [`ServerPool`]: the same submit/await surface, but
//! flushes are claimed by whichever card frees up first, urgent deadlines
//! are claimed earliest-deadline-first (so an overload expires the fewest
//! possible jobs), and a speculative preparer transforms the stream-side
//! operands of queued jobs off the cards' critical path.
//!
//! Run with: `cargo run --release --example fleet_serving`

use std::time::{Duration, Instant};

use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS / 8;
    let stream_len = 32;
    let cards = 2;
    let mut rng = StdRng::seed_from_u64(41);
    let accumulator = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    println!("spawning a {cards}-card fleet ({bits}-bit operands, micro-batches of 8)…");
    let engines: Vec<EvalEngine<SsaSoftware>> = (0..cards)
        .map(|_| Ok(EvalEngine::new(SsaSoftware::for_operand_bits(bits)?)))
        .collect::<Result<_, MultiplyError>>()?;
    let speculator = EvalEngine::new(SsaSoftware::for_operand_bits(bits)?);
    let pool = ServerPool::spawn_speculative(
        engines,
        speculator,
        ServeConfig {
            queue_capacity: 64,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            cache_capacity: 64,
            speculate_hot_after: 1,
            ..ServeConfig::default()
        },
    );

    // Submit the whole stream, then await the tickets — results arrive in
    // submission order per submitter no matter which card ran each flush,
    // and the recurring accumulator rides every card's digest cache.
    let start = Instant::now();
    let tickets: Vec<ProductTicket> = stream
        .iter()
        .map(|b| {
            pool.submit(ProductRequest::new(accumulator.clone(), b.clone()))
                .expect("fleet alive")
        })
        .collect();
    for (b, ticket) in stream.iter().zip(tickets) {
        assert_eq!(
            ticket.wait()?,
            &accumulator * b,
            "served products are bit-exact"
        );
    }
    let elapsed = start.elapsed();
    println!(
        "served {stream_len} products across {cards} cards in {elapsed:.2?} \
         ({:.1} products/s)",
        stream_len as f64 / elapsed.as_secs_f64()
    );

    // Deadlines under load: EDF claiming means an urgent job leapfrogs
    // the queue instead of expiring behind best-effort traffic.
    let best_effort: Vec<ProductTicket> = stream
        .iter()
        .map(|b| {
            pool.submit(ProductRequest::new(accumulator.clone(), b.clone()))
                .expect("fleet alive")
        })
        .collect();
    let urgent = pool
        .submit(
            ProductRequest::new(accumulator.clone(), stream[0].clone())
                .with_deadline(Duration::from_millis(250)),
        )
        .expect("fleet alive");
    match urgent.wait() {
        Ok(product) => {
            assert_eq!(product, &accumulator * &stream[0]);
            println!("urgent job met its 250 ms deadline by claiming the next flush");
        }
        Err(ServeError::Expired { missed_by }) => {
            println!("urgent job expired {missed_by:.2?} late (host too loaded)");
        }
        Err(other) => return Err(other.into()),
    }
    for ticket in best_effort {
        let _ = ticket.wait()?;
    }

    let stats = pool.shutdown();
    let total = stats.total();
    println!(
        "\nfleet lifetime: {} flushes (largest {}), {} completed, {} expired \
         ({} in queue / {} in flush)",
        total.flushes,
        total.largest_flush,
        total.completed,
        total.expired(),
        total.expired_in_queue,
        total.expired_in_flush,
    );
    println!(
        "caches: {} hits / {} misses; speculation: {} prepared ahead, {} claimed by cards",
        total.cache_hits, total.cache_misses, stats.speculative_prepares, total.speculative_hits,
    );
    for (card, worker) in stats.per_worker.iter().enumerate() {
        println!(
            "  card {card}: {} flushes, {} completed",
            worker.flushes, worker.completed
        );
    }
    Ok(())
}
