//! SIMD over encrypted bits: the batched DGHV variant (the paper's
//! reference \[22\], Coron–Lepoint–Tibouchi) — many plaintext slots per
//! ciphertext via the CRT, with slot-wise homomorphic operations riding on
//! the same big-integer multiplication the accelerator provides.
//!
//! Run with: `cargo run --release -p he-accel --example simd_batch`

use he_accel::dghv::batch::{BatchParams, BatchSecretKey};
use he_accel::dghv::KaratsubaBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), he_accel::dghv::DghvError> {
    let params = BatchParams::tiny();
    println!(
        "batched DGHV: {} slots of {}-bit secrets in {}-bit ciphertexts",
        params.slots, params.base.eta, params.base.gamma
    );

    let mut rng = StdRng::seed_from_u64(99);
    let key = BatchSecretKey::generate(params, &mut rng)?;

    // Two bit-vectors, element-wise (a AND b) XOR (a XOR b) = a OR b.
    let a = [true, false, true, false];
    let b = [true, true, false, false];
    println!("encrypting a = {a:?}");
    println!("encrypting b = {b:?}");
    let ca = key.encrypt(&a, &mut rng);
    let cb = key.encrypt(&b, &mut rng);

    println!("evaluating slot-wise OR with one ciphertext product + two additions…");
    let and = key.mul(&KaratsubaBackend, &ca, &cb)?;
    let xor = key.add(&ca, &cb);
    let or = key.add(&and, &xor);

    let decrypted = key.decrypt(&or);
    let expected: Vec<bool> = a.iter().zip(&b).map(|(x, y)| x | y).collect();
    println!("decrypted  a OR b = {decrypted:?}");
    assert_eq!(decrypted, expected);
    println!(
        "all {} slots correct — {} plaintext bits processed per ciphertext multiplication",
        key.slots(),
        key.slots()
    );
    Ok(())
}
