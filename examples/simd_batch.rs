//! SIMD over encrypted bits, batch-first: the batched DGHV variant (the
//! paper's reference \[22\], Coron–Lepoint–Tibouchi) with many plaintext
//! slots per ciphertext, driven through the batch evaluation API — the
//! recurring operand of a slot-wise AND sweep is prepared **once** and its
//! forward transform amortized over the whole batch, exactly the traffic
//! shape the accelerator targets.
//!
//! Run with: `cargo run --release -p he-accel --example simd_batch`

use he_accel::dghv::batch::{BatchCiphertext, BatchParams, BatchSecretKey};
use he_accel::dghv::{KaratsubaBackend, SsaBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), he_accel::dghv::DghvError> {
    let params = BatchParams::tiny();
    println!(
        "batched DGHV: {} slots of {}-bit secrets in {}-bit ciphertexts",
        params.slots, params.base.eta, params.base.gamma
    );

    let mut rng = StdRng::seed_from_u64(99);
    let key = BatchSecretKey::generate(params, &mut rng)?;

    // A server-side sweep: one encrypted mask ANDed against a batch of
    // encrypted records — slots × batch plaintext ANDs on batch ciphertext
    // products, with the mask's transform paid once.
    let mask = [true, false, true, true];
    let records = [
        [true, true, false, false],
        [false, true, true, false],
        [true, true, true, true],
    ];
    println!("encrypting mask    = {mask:?}");
    let cmask = key.encrypt(&mask, &mut rng);
    let cts: Vec<BatchCiphertext> = records
        .iter()
        .map(|bits| {
            println!("encrypting record  = {bits:?}");
            key.encrypt(bits, &mut rng)
        })
        .collect();

    println!(
        "\nANDing the mask against {} records ({} plaintext bits per ciphertext product)…",
        cts.len(),
        key.slots()
    );
    // The SSA backend caches the mask's forward spectrum across the batch;
    // the classical backend cross-checks the results bit-for-bit.
    let ssa = SsaBackend::for_gamma(params.base.gamma);
    let products = key.mul_many(&ssa, &cmask, &cts)?;
    let reference = key.mul_many(&KaratsubaBackend, &cmask, &cts)?;
    assert_eq!(products, reference, "cached batch must be bit-exact");

    for (product, bits) in products.iter().zip(&records) {
        let decrypted = key.decrypt(product);
        let expected: Vec<bool> = mask.iter().zip(bits).map(|(m, b)| m & b).collect();
        println!("decrypted mask AND {bits:?} = {decrypted:?}");
        assert_eq!(decrypted, expected);
    }

    // Slot-wise OR still composes from the batch results:
    // a OR b = (a AND b) XOR a XOR b.
    let or = key.add(&key.add(&products[0], &cmask), &cts[0]);
    let expected: Vec<bool> = mask.iter().zip(&records[0]).map(|(m, b)| m | b).collect();
    assert_eq!(key.decrypt(&or), expected);
    println!(
        "\nall {} slots correct across the batch — {} plaintext ANDs on {} ciphertext products",
        key.slots(),
        key.slots() * products.len(),
        products.len()
    );
    Ok(())
}
