//! A self-healing fleet under fault injection: a 2-card supervised
//! [`ServerPool`] where card 0 periodically dies mid-flush — and traffic
//! keeps flowing.
//!
//! [`FaultyMultiplier`] injects deterministic, seeded card deaths and
//! transient device errors; the pool's backend factory
//! ([`ServerPool::with_backend_factory`]) rebuilds each dead card with
//! exponential backoff, replays its session pins, and the in-flight jobs
//! of every killed flush are re-queued to the survivors — so every
//! ticket resolves and results stay bit-exact through the chaos.
//!
//! Run with: `cargo run --release --example chaos_fleet`

use std::time::{Duration, Instant};

use he_accel::fault::{FaultPlan, FaultyMultiplier};
use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 20_000;
    let stream_len = 48u64;
    let seed = 2016;
    let mut rng = StdRng::seed_from_u64(seed);
    let accumulator = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    // Card 0 dies every 5th flush and glitches (transient device error)
    // every 7th; card 1 is healthy. The schedule is derived from the
    // seed alone, so a failing run replays exactly.
    println!("spawning a supervised 2-card fleet (card 0: dies every 5th flush, seed {seed})…");
    let pool = ServerPool::with_backend_factory(
        2,
        move |card| {
            let plan = if card == 0 {
                FaultPlan::new(seed).panic_every(5).error_every(7)
            } else {
                FaultPlan::new(seed)
            };
            EvalEngine::new(FaultyMultiplier::new(
                SsaSoftware::for_operand_bits(bits).expect("geometry fits"),
                plan,
            ))
        },
        ServeConfig {
            queue_capacity: 64,
            max_batch: 4,
            max_delay: Duration::from_millis(2),
            retry_limit: 4,
            restart_backoff: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    );

    println!("(panic traces below are the injected card deaths — the supervisor catches them)");

    // Full traffic through the failing fleet: intake stays open across
    // the injected deaths, and every single ticket resolves bit-exactly
    // — the killed flushes' jobs fail over to the healthy card while the
    // supervisor rebuilds the dead one.
    let start = Instant::now();
    let tickets: Vec<ProductTicket> = stream
        .iter()
        .map(|b| {
            pool.submit(ProductRequest::new(accumulator.clone(), b.clone()))
                .expect("supervised intake stays open through card deaths")
        })
        .collect();
    for (b, ticket) in stream.iter().zip(tickets) {
        assert_eq!(
            ticket.wait()?,
            &accumulator * b,
            "served products stay bit-exact through the chaos"
        );
    }
    let elapsed = start.elapsed();
    println!(
        "served {stream_len}/{stream_len} products in {elapsed:.2?} \
         ({:.1} products/s) — zero tickets lost",
        stream_len as f64 / elapsed.as_secs_f64()
    );

    // Live health while traffic has stopped: both cards should be back.
    let live = pool.stats();
    println!("card health after the storm: {:?}", live.health);

    let stats = pool.shutdown();
    let total = stats.total();
    println!(
        "\nfleet lifetime: {} flushes, {} completed, {} retried after faults, \
         {} card restarts, {} quarantined",
        total.flushes, total.completed, total.retried, total.restarts, total.poisoned,
    );
    for (card, worker) in stats.per_worker.iter().enumerate() {
        println!(
            "  card {card} [{:?}]: {} flushes, {} completed, {} restarts",
            stats.health[card], worker.flushes, worker.completed, worker.restarts
        );
    }
    assert_eq!(total.completed, stream_len);
    assert!(
        total.restarts >= 1,
        "the fault plan must actually have killed card 0"
    );
    Ok(())
}
