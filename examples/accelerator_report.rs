//! Regenerates the paper's evaluation (Tables I and II) from the resource
//! model, the analytic timing model, and one cycle-simulated paper-scale
//! multiplication.
//!
//! Run with: `cargo run --release -p he-accel --example accelerator_report`

use he_accel::hwsim::comparators::Table2;
use he_accel::hwsim::power::render_energy_table;
use he_accel::hwsim::resources::Table1;
use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), MultiplyError> {
    let config = AcceleratorConfig::paper();

    let t1 = Table1::from_model(&config);
    println!("{}", t1.render());
    println!(
        "average ALM/register/DSP saving vs [28]: {:.0}% (paper: ~60%)\n",
        t1.average_saving_pct()
    );

    let t2 = Table2::from_model(config.clone());
    println!("{}", t2.render());
    for c in &t2.comparators {
        if let Some(speedup) = t2.multiplication_speedup(c) {
            println!("  speedup vs {} ({}): {speedup:.2}x", c.tag, c.platform);
        }
    }

    println!("\ncycle-simulating one paper-scale multiplication…");
    let mut rng = StdRng::seed_from_u64(1);
    let bits = he_accel::ssa::PAPER_OPERAND_BITS;
    let a = UBig::random_bits(&mut rng, bits);
    let b = UBig::random_bits(&mut rng, bits);
    let hw = HardwareSim::paper();
    let (product, report) = hw.multiply_with_report(&a, &b)?;
    println!("{}", report.render());
    println!(
        "product verified: {} bits, equals karatsuba: {}",
        product.bit_len(),
        product == a.mul_karatsuba(&b)
    );

    println!("\n{}", render_energy_table(&config));
    Ok(())
}
