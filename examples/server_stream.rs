//! A resident product server: the deployment shape the paper's
//! accelerator targets — one long-lived engine fed a stream of product
//! jobs through a bounded queue.
//!
//! Where `transform_caching.rs` hand-rolls its batches (build a
//! `ProductJob` slice, call `EvalEngine::run`, manage handles yourself),
//! the server does all of that behind a submit/await API: jobs are
//! micro-batched (flush on batch-size or deadline, whichever first),
//! recurring operands are recognized by digest and served from a cached
//! forward spectrum automatically, late jobs expire as typed errors, and
//! a full queue pushes back instead of buffering without bound.
//!
//! This is the *blocking* client shape — one awaited ticket per in-flight
//! product. For the completion-driven alternative (one reactor thread,
//! tagged completions, session-pinned operands) see
//! `streaming_client.rs`.
//!
//! Run with: `cargo run --release --example server_stream`

use std::time::{Duration, Instant};

use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS / 4;
    let stream_len = 24;
    let mut rng = StdRng::seed_from_u64(31);
    // The serving traffic shape: one recurring accumulator times a stream
    // of fresh operands.
    let accumulator = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    println!("spawning a resident server ({bits}-bit operands, micro-batches of 8)…");
    let server = ProductServer::spawn(
        EvalEngine::new(SsaSoftware::for_operand_bits(bits)?),
        ServeConfig {
            queue_capacity: 16,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            cache_capacity: 32,
            ..ServeConfig::default()
        },
    );

    // Submit the whole stream, then await the tickets — the server forms
    // micro-batches behind the queue and recognizes the recurring
    // accumulator by digest, so after the first flush every product rides
    // a cached forward spectrum.
    let start = Instant::now();
    let tickets: Vec<ProductTicket> = stream
        .iter()
        .map(|b| {
            server
                .submit(ProductRequest::new(accumulator.clone(), b.clone()))
                .expect("server alive")
        })
        .collect();
    for (b, ticket) in stream.iter().zip(tickets) {
        let product = ticket.wait()?;
        assert_eq!(product, &accumulator * b, "served products are bit-exact");
    }
    let elapsed = start.elapsed();
    println!(
        "served {stream_len} products in {elapsed:.2?} \
         ({:.1} products/s, results in submission order)",
        stream_len as f64 / elapsed.as_secs_f64()
    );

    // Deadlines: a job that cannot start in time is answered with a typed
    // error instead of occupying the engine.
    let late = server
        .submit(
            ProductRequest::new(accumulator.clone(), stream[0].clone())
                .with_deadline(Duration::ZERO),
        )
        .expect("server alive");
    match late.wait() {
        Err(ServeError::Expired { missed_by }) => {
            println!("deadline demo: job expired {missed_by:.2?} past its deadline, as requested");
        }
        other => println!("deadline demo: job raced the flush and {other:?}"),
    }

    // Backpressure: `try_submit` never blocks — a full queue hands the
    // request back so the producer can shed or reroute it.
    let mut accepted = 0usize;
    let mut shed = 0usize;
    for b in &stream {
        match server.try_submit(ProductRequest::new(accumulator.clone(), b.clone())) {
            Ok(ticket) => {
                accepted += 1;
                drop(ticket); // fire-and-forget: results may be discarded
            }
            Err(SubmitError::Full(_)) => shed += 1,
            Err(err) => return Err(err.into()),
        }
    }
    println!("backpressure demo: {accepted} accepted, {shed} shed without blocking");

    let stats = server.shutdown();
    assert_eq!(
        stats.shed, shed as u64,
        "every rejected try_submit is accounted in the stats"
    );
    println!(
        "\nserver lifetime: {} flushes (largest {}), {} completed, {} expired, \
         {} shed, cache {} hits / {} misses",
        stats.flushes,
        stats.largest_flush,
        stats.completed,
        stats.expired(),
        stats.shed,
        stats.cache_hits,
        stats.cache_misses
    );
    Ok(())
}
