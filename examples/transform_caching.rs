//! Transform caching: pay an operand's forward NTT once, reuse the spectrum
//! across many products — the "reduce the number of FFT computations"
//! optimization of the paper's reference [25], here on the software SSA
//! multiplier and in the accelerator's timing model.
//!
//! Run with: `cargo run --release -p he-accel --example transform_caching`

use std::time::Instant;

use he_accel::hwsim::perf::PerfModel;
use he_accel::prelude::*;
use he_accel::ssa::SsaError;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), SsaError> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS / 2;
    let stream_len = 8;
    println!("one fixed {bits}-bit operand times a stream of {stream_len} operands\n");

    let mut rng = StdRng::seed_from_u64(25);
    let fixed = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    let ssa = SsaMultiplier::paper();

    // Plain: three transforms per product.
    let start = Instant::now();
    let plain: Vec<UBig> = stream
        .iter()
        .map(|b| ssa.multiply(&fixed, b))
        .collect::<Result<_, _>>()?;
    let t_plain = start.elapsed();

    // Cached: transform the fixed operand once, two transforms per product.
    let start = Instant::now();
    let spectrum = ssa.transform(&fixed)?;
    let cached: Vec<UBig> = stream
        .iter()
        .map(|b| ssa.multiply_one_cached(&spectrum, b))
        .collect::<Result<_, _>>()?;
    let t_cached = start.elapsed();

    assert_eq!(plain, cached, "cached products must be bit-exact");
    println!("software SSA ({} products, bit-exact):", stream.len());
    println!("  plain (3 transforms each)     {t_plain:>12.2?}");
    println!("  cached (1 + 2 per product)    {t_cached:>12.2?}");
    println!(
        "  measured saving               {:>11.1}%",
        100.0 * (1.0 - t_cached.as_secs_f64() / t_plain.as_secs_f64())
    );

    // Both-cached products (e.g. squaring a transformed accumulator).
    let t_both = ssa.transform(&stream[0])?;
    let both = ssa.multiply_transformed(&spectrum, &t_both)?;
    assert_eq!(both, plain[0]);

    // The same accounting on the accelerator model (Section V formulas).
    let model = PerfModel::new(AcceleratorConfig::paper());
    println!("\naccelerator model (per product, 4 PEs @ 200 MHz):");
    for (label, fresh) in [
        ("nothing cached (3 transforms)", 2u64),
        ("one spectrum cached", 1),
        ("both spectra cached", 0),
    ] {
        println!(
            "  {label:<31} {:>8.2} us",
            model.cached_multiplication_us(fresh)
        );
    }
    println!(
        "\neach cached spectrum saves one full T_FFT = {:.2} us of the {:.1} us product",
        model.fft_us(),
        model.multiplication_us()
    );
    Ok(())
}
