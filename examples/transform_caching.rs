//! Transform caching through the batch engine: prepare an operand once,
//! stream products against the cached spectrum — the "reduce the number of
//! FFT computations" optimization of the paper's reference [25], here on
//! the batch-first evaluation engine and in the accelerator's timing and
//! batch-schedule models.
//!
//! This walkthrough manages handles and batches by hand to expose the
//! mechanism; `examples/server_stream.rs` shows the production shape,
//! where a resident [`ProductServer`] does the batching and handle
//! caching behind a submit/await queue.
//!
//! Run with: `cargo run --release --example transform_caching`

use std::time::Instant;

use he_accel::hwsim::perf::PerfModel;
use he_accel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), MultiplyError> {
    let bits = he_accel::ssa::PAPER_OPERAND_BITS / 2;
    let stream_len = 8;
    println!("one fixed {bits}-bit operand times a stream of {stream_len} operands\n");

    let mut rng = StdRng::seed_from_u64(25);
    let fixed = UBig::random_bits(&mut rng, bits);
    let stream: Vec<UBig> = (0..stream_len)
        .map(|_| UBig::random_bits(&mut rng, bits))
        .collect();

    let engine = EvalEngine::new(SsaSoftware::paper());

    // Plain: three transforms per product, no session state.
    let start = Instant::now();
    let jobs: Vec<ProductJob> = stream.iter().map(|b| ProductJob::Raw(&fixed, b)).collect();
    let plain = engine.run(&jobs)?;
    let t_plain = start.elapsed();

    // Cached: prepare the fixed operand once, then two transforms per
    // product — the engine's dominant traffic shape.
    let start = Instant::now();
    let handle = engine.prepare(&fixed)?;
    let cached = engine.run_stream(&handle, &stream)?;
    let t_cached = start.elapsed();

    assert_eq!(plain, cached, "cached products must be bit-exact");
    println!(
        "software SSA through the engine ({} products, bit-exact):",
        stream.len()
    );
    println!("  raw jobs (3 transforms each)      {t_plain:>12.2?}");
    println!("  prepared handle (1 + 2·n)         {t_cached:>12.2?}");
    println!(
        "  measured saving                   {:>11.1}%",
        100.0 * (1.0 - t_cached.as_secs_f64() / t_plain.as_secs_f64())
    );

    // Both-prepared products (e.g. squaring a transformed accumulator):
    // pointwise + one inverse transform.
    let start = Instant::now();
    let spectra: Vec<OperandHandle> = stream
        .iter()
        .map(|b| engine.prepare(b))
        .collect::<Result<_, _>>()?;
    let jobs: Vec<ProductJob> = spectra
        .iter()
        .map(|tb| ProductJob::Prepared(&handle, tb))
        .collect();
    let both = engine.run(&jobs)?;
    let t_both = start.elapsed();
    assert_eq!(both, plain);
    println!("  both prepared (n + n products)    {t_both:>12.2?}");

    // The same accounting on the accelerator model (Section V formulas).
    let model = PerfModel::new(AcceleratorConfig::paper());
    println!("\naccelerator model (per product, 4 PEs @ 200 MHz):");
    for (label, fresh) in [
        ("nothing cached (3 transforms)", 2u64),
        ("one spectrum cached", 1),
        ("both spectra cached", 0),
    ] {
        println!(
            "  {label:<31} {:>8.2} us",
            model.cached_multiplication_us(fresh)
        );
    }
    println!(
        "\neach cached spectrum saves one full T_FFT = {:.2} us of the {:.1} us product",
        model.fft_us(),
        model.multiplication_us()
    );

    // And as a pipelined batch on the simulated accelerator: the engine's
    // jobs map onto the hardware's instruction stream, where recurring
    // operands shorten the makespan below the sum of isolated latencies.
    let hw = HardwareSim::paper();
    let small: Vec<UBig> = (0..4).map(|_| UBig::random_bits(&mut rng, 4_000)).collect();
    let hw_handle = hw.prepare(&small[0])?;
    let hw_jobs: Vec<ProductJob> = small[1..]
        .iter()
        .map(|b| ProductJob::OnePrepared(&hw_handle, b))
        .collect();
    let (hw_products, schedule) = hw.multiply_batch_with_report(&hw_jobs)?;
    for (product, b) in hw_products.iter().zip(&small[1..]) {
        assert_eq!(product, &(&small[0] * b));
    }
    println!(
        "\nsimulated accelerator batch of {}: makespan {:.1} us, {:.2}x over serial, {:.0} products/s",
        hw_jobs.len(),
        schedule.makespan_us(),
        schedule.speedup_vs_serial(),
        schedule.throughput_per_second()
    );
    Ok(())
}
