//! Traces the Fig. 2 data-distribution schedule: the 64K-point NTT over
//! four hypercube-connected PEs, with interleaved computation and
//! communication stages.
//!
//! Run with: `cargo run --release -p he-accel --example distributed_fft`

use he_accel::field::Fp;
use he_accel::hwsim::distributed::{DistributedNtt, PhaseReport};
use he_accel::hwsim::network::{schedule_64k, Hypercube};
use he_accel::ntt::{Ntt64k, N64K};
use he_accel::prelude::*;

fn main() -> Result<(), he_accel::hwsim::HwSimError> {
    let config = AcceleratorConfig::paper();
    println!(
        "distributed 64K-point NTT: P = {} PEs, hypercube dimension d = {}, l = 3 stages (l > d)\n",
        config.num_pes(),
        config.hypercube_dim()
    );

    println!("planned schedule (Fig. 2):");
    for phase in schedule_64k(config.num_pes()) {
        println!("  {phase}");
    }

    let cube = Hypercube::new(config.hypercube_dim());
    println!("\nhypercube exchange partners:");
    for d in 0..config.hypercube_dim() {
        println!("  dimension {d}: {:?}", cube.exchange_pairs(d));
    }

    // Run the transform on a test vector and show the measured schedule.
    let dist = DistributedNtt::new(config)?;
    let mut input = vec![Fp::ZERO; N64K];
    for (i, x) in input.iter_mut().enumerate() {
        *x = Fp::new(i as u64 + 1);
    }
    let (out, report) = dist.forward(&input);

    println!("\nmeasured run:");
    for phase in &report.phases {
        match phase {
            PhaseReport::Compute {
                label,
                radix,
                ffts_per_pe,
                cycles,
            } => println!("  {label}: {ffts_per_pe} radix-{radix} FFTs per PE, {cycles} cycles"),
            PhaseReport::Exchange {
                label,
                dimension,
                words_per_pe,
                cycles,
                overlapped,
            } => {
                println!(
                    "  {label}: dim-{dimension} exchange, {words_per_pe} words/PE, {cycles} cycles ({})",
                    if *overlapped { "fully overlapped" } else { "EXPOSED" }
                )
            }
        }
    }
    println!(
        "  total: {} cycles = {:.2} us at 200 MHz (paper: 30.7 us)",
        report.total_cycles(),
        report.total_cycles() as f64 * 5.0 / 1000.0
    );

    // Cross-check against the single-node reference plan.
    let reference = Ntt64k::new().forward(&input);
    assert_eq!(
        out, reference,
        "distributed result must match the reference"
    );
    println!("\ndistributed result verified against the single-node 64K plan.");

    // And the threaded execution (real PEs exchanging over channels).
    let parallel = dist.forward_parallel(&input);
    assert_eq!(parallel, reference);
    println!("multi-threaded PE execution (crossbeam channels) verified too.");
    Ok(())
}
