//! Compressed DGHV keys and ciphertexts — Coron–Naccache–Tibouchi
//! (EUROCRYPT 2012), the paper's reference [34]: the public key stores a
//! seed plus small corrections instead of τ full γ-bit integers, and
//! evaluated ciphertexts are shrunk through a ladder of smaller moduli
//! before transmission.
//!
//! Run with: `cargo run --release -p he-accel --example key_compression`

use he_accel::dghv::{CompressedKeyPair, DghvError, DghvParams, KaratsubaBackend, ModulusLadder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), DghvError> {
    let params = DghvParams::toy();
    println!(
        "DGHV toy setting: gamma = {} bits, eta = {}, tau = {} public elements",
        params.gamma, params.eta, params.tau
    );

    let mut rng = StdRng::seed_from_u64(34);
    let keys = CompressedKeyPair::generate(params, 0x5EED, &mut rng)?;
    let compressed = keys.compressed();

    let stored_kb = compressed.stored_bits() as f64 / 8192.0;
    let expanded_kb = compressed.expanded_bits() as f64 / 8192.0;
    println!("\nkey sizes:");
    println!("  uncompressed public key {expanded_kb:>10.1} KiB");
    println!("  compressed public key   {stored_kb:>10.1} KiB");
    println!(
        "  compression ratio       {:>10.1}x  (information bound ~ gamma/eta = {:.1}x)",
        compressed.compression_ratio(),
        params.gamma as f64 / params.eta as f64
    );

    println!("\nexpanding the seed back into a full public key…");
    let public = compressed.expand();
    assert_eq!(public.elements().len(), params.tau as usize);

    // The expanded key is a completely ordinary DGHV key.
    let backend = KaratsubaBackend;
    let mut failures = 0;
    for a in [false, true] {
        for b in [false, true] {
            let ca = public.encrypt(a, &mut rng);
            let cb = public.encrypt(b, &mut rng);
            let xor = public.add(&ca, &cb);
            let and = public.mul(&backend, &ca, &cb)?;
            if keys.secret().decrypt(&xor) != (a ^ b) || keys.secret().decrypt(&and) != (a & b) {
                failures += 1;
            }
        }
    }
    assert_eq!(failures, 0);
    println!("homomorphic XOR/AND truth tables verified on the expanded key");

    // The other half of [34]: shrink an *evaluated* ciphertext through a
    // ladder of smaller exact multiples of p before sending it back.
    println!("\nciphertext laddering (result compression):");
    let ladder = ModulusLadder::generate(keys.secret(), &mut rng);
    let ca = public.encrypt(true, &mut rng);
    let cb = public.encrypt(true, &mut rng);
    let result = public.mul(&backend, &ca, &cb)?;
    println!("  evaluated result       {:>8} bits", result.bit_len());
    for level in 0..ladder.num_rungs() {
        let small = ladder.compress(&result, level);
        assert!(keys.secret().decrypt(&small)); // 1 AND 1
        println!(
            "  rung {level}                 {:>8} bits (still decrypts)",
            small.bit_len()
        );
    }

    // At the paper's scale the ratio approaches gamma/eta ~ 500x.
    let paper = DghvParams::small_paper();
    println!(
        "\nat the paper's scale (gamma = {}), the same construction stores ~{:.0}x less",
        paper.gamma,
        paper.gamma as f64 / paper.eta as f64
    );
    Ok(())
}
